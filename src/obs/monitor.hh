/**
 * @file
 * Offline incident correlation for jordmon.
 *
 * Consumes the two artifacts the fleet observability plane writes
 * (`BASE.windows.csv`, `BASE.events.csv`) and joins the SLO
 * monitor's alerts against the ground-truth chaos injections:
 *
 *  1. ground-truth incident events (crash, gray, link_drop,
 *     link_delay) are grouped into incidents — events whose
 *     [start, end] intervals overlap merge into one incident, so a
 *     scripted mass crash is one incident with a multi-server blast
 *     radius;
 *  2. each alert_raise is attributed to the earliest incident whose
 *     [start, end + slack] covers it (slack absorbs the latency tail
 *     that keeps burning after the injection clears); alerts covered
 *     by no incident are counted as false positives
 *     (`unmatched_alerts` — zero on a clean run);
 *  3. per incident, the telemetry windows overlapping it on the
 *     incident's servers give the attributable SLO burn
 *     (errors / arrivals over those windows).
 *
 * Everything is computed from sorted vectors in one deterministic
 * pass, so a report is byte-identical across same-seed runs — which
 * is what lets `jordmon diff` gate detect-latency/TTR/burn
 * regressions the way jordprof diff gates latency.
 */

#ifndef JORD_OBS_MONITOR_HH
#define JORD_OBS_MONITOR_HH

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace jord::obs {

/** One parsed telemetry row (windows CSV). */
struct MonWindow {
    std::uint64_t window = 0;
    double startUs = 0;
    double endUs = 0;
    int server = 0;
    /** "*" for the server-aggregate row. */
    std::string tenant;
    std::uint64_t arrivals = 0;
    std::uint64_t completions = 0;
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
    std::uint64_t sloMiss = 0;
    std::uint64_t coldStarts = 0;
    std::uint64_t warmSlots = 0;
    double queueDepth = 0;
    double occupancy = 0;
    double p50Us = 0;
    double p99Us = 0;

    bool aggregate() const { return tenant == "*"; }
    std::uint64_t errors() const { return sloMiss + failed + shed; }
};

/** One parsed event row (events CSV). */
struct MonEvent {
    double timeUs = 0;
    double endUs = 0;
    std::string kind;
    int server = -1; ///< -1 when the CSV column is empty
    std::string tenant;
    double value = 0;

    bool
    incident() const
    {
        return kind == "crash" || kind == "gray" ||
               kind == "link_drop" || kind == "link_delay";
    }
    bool alertRaise() const { return kind == "alert_raise"; }
};

/** One correlated incident. */
struct MonIncident {
    /** Kinds merged into this incident, '+'-joined ("crash+gray"). */
    std::string kind;
    double startUs = 0;
    double endUs = 0;
    /** Distinct servers, ascending (the blast radius). */
    std::vector<int> servers;
    /** Tenants alerted or burning during the incident, sorted. */
    std::vector<std::string> tenants;
    /** First joined alert - incident start; -1 = never detected. */
    double detectUs = -1;
    /** Incident end - start (for a crash: the restart time). */
    double ttrUs = 0;
    unsigned alerts = 0;
    std::uint64_t errorCount = 0;
    std::uint64_t arrivalCount = 0;
    /** errorCount / arrivalCount over overlapping windows. */
    double burn = 0;
};

/** The joined report. */
struct MonReport {
    std::vector<MonIncident> incidents;
    unsigned alertsTotal = 0;
    /** alert_raise events no incident explains (false positives). */
    unsigned unmatchedAlerts = 0;
    double maxTtrUs = 0;
    double maxDetectUs = 0;
    std::uint64_t errorCount = 0;
    std::uint64_t arrivalCount = 0;
    /** Fleet-wide errors / arrivals over all windows. */
    double totalBurn = 0;
};

/** Parse a windows CSV; fatal on a malformed header or row. */
std::vector<MonWindow> parseWindowsCsv(std::istream &in,
                                       const std::string &what);

/** Parse an events CSV; fatal on a malformed header or row. */
std::vector<MonEvent> parseEventsCsv(std::istream &in,
                                     const std::string &what);

/**
 * Join alerts against ground-truth incidents (see file comment).
 * @p slack_us extends each incident's attribution horizon.
 */
MonReport buildReport(const std::vector<MonEvent> &events,
                      const std::vector<MonWindow> &windows,
                      double slack_us);

/** Human-readable incident timeline. */
std::string renderReport(const MonReport &report);

/** Flat key->value summary for jordmon diff (prof::writeFlatJson). */
std::map<std::string, double> flatReport(const MonReport &report);

/**
 * Per-server x window heatmap CSV from the aggregate telemetry rows:
 * one row per server, one column per window, cell = interval P99 in
 * µs (the at-a-glance "which server, which window" view).
 */
void writeHeatmapCsv(const std::vector<MonWindow> &windows,
                     std::ostream &out);

} // namespace jord::obs

#endif // JORD_OBS_MONITOR_HH
