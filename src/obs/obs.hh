/**
 * @file
 * Fleet observability plane: distributed request traces, windowed
 * telemetry, SLO burn-rate alerts, and ground-truth incident events.
 *
 * A FleetObserver is attached to one ClusterSim run (null by default:
 * every instrumentation site in the fleet simulator is a single
 * pointer test, so `--obs-*` off is byte-identical to a run without
 * the plane). When attached it collects, from the same serial
 * discrete-event stream the simulator already executes:
 *
 *  - **distributed request traces**: fleet span kinds (lb_decision,
 *    queue, cold_start, warm_hit, hedge_primary, hedge_loser,
 *    retry_attempt, breaker_shed) linked per request across servers
 *    on one named Chrome-trace track per server (track/pid s+1;
 *    track 0 is the front-end LB), so Perfetto renders the fleet
 *    timeline with labeled processes;
 *
 *  - **windowed telemetry**: a ring of per-server, per-tenant
 *    interval snapshots (arrivals, completions, shed, failed, SLO
 *    misses, cold starts, warm-pool size, time-weighted queue depth
 *    and occupancy, interval P50/P99 via Histogram merge) flushed
 *    every `--obs-interval-ms` and exported as a long-format CSV
 *    time series;
 *
 *  - an **SLO monitor**: per-tenant error budgets (1 - target
 *    attainment) and a multi-window burn-rate pair (fast 5-interval /
 *    slow 60-interval). An alert raises when *both* burn rates exceed
 *    the threshold — the fast window gives detection latency, the
 *    slow window suppresses one-interval blips — and clears when the
 *    fast rate falls back under it. Alerts are deterministic events:
 *    they land in the event stream, the fleet trace, and the metrics
 *    registry;
 *
 *  - **ground-truth incidents**: every chaos injection the fault
 *    plan actually fired (server crashes with their restart time,
 *    gray windows, link drops/delays) is logged as an incident event,
 *    so `tools/jordmon` can join alerts against what really happened
 *    and report detect latency, time-to-recover, and blast radius
 *    per incident.
 *
 * Determinism: the observer only reads the simulation (hooks carry
 * the current tick), keeps no wall-clock or hash-ordered state, and
 * emits every artifact in a fixed sort order — so all outputs are
 * byte-identical across same-seed runs at any `--jobs`.
 */

#ifndef JORD_OBS_OBS_HH
#define JORD_OBS_OBS_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "stats/histogram.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace jord::obs {

/** Observability-plane configuration (all off by default). */
struct ObsConfig {
    /** Telemetry window size; 0 = windowed stream, SLO monitor and
     * incident log off. */
    double intervalUs = 0;
    /** Capture the fleet span trace. */
    bool trace = false;
    /** SLO objective: target fraction of requests meeting their
     * tenant SLO. The error budget is 1 - target. */
    double sloTargetFrac = 0.99;
    /** Burn-rate window pair, in telemetry intervals. */
    unsigned burnFastWindows = 5;
    unsigned burnSlowWindows = 60;
    /** Alert when both window burn rates exceed this multiple of the
     * error budget. */
    double burnThreshold = 2.0;

    bool windowed() const { return intervalUs > 0; }
    bool enabled() const { return windowed() || trace; }
};

/** One tenant as the observer sees it. */
struct ObsTenant {
    std::string name;
    double sloUs = 0;
};

/** Per-server state snapshot the simulator hands to flushWindow(). */
struct ServerSnapshot {
    std::uint32_t queued = 0;
    std::uint32_t running = 0;
    /** Live (unexpired) warm PD slots across all tenants. */
    std::uint64_t warmSlots = 0;
};

/** One flushed telemetry row; tenant < 0 is the server aggregate. */
struct WindowRow {
    std::uint64_t window = 0;
    sim::Tick startTick = 0;
    sim::Tick endTick = 0;
    std::uint32_t server = 0;
    std::int32_t tenant = -1;
    std::uint64_t arrivals = 0;
    std::uint64_t completions = 0;
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
    std::uint64_t sloMiss = 0;
    std::uint64_t coldStarts = 0;
    std::uint64_t warmSlots = 0;
    /** Time-weighted mean outstanding (aggregate rows only). */
    double queueDepth = 0;
    /** queueDepth / server concurrency (aggregate rows only). */
    double occupancy = 0;
    double p50Us = 0;
    double p99Us = 0;
};

/** Event-stream record kinds (incidents and alerts). */
enum class EventKind : std::uint8_t {
    Crash,     ///< server crash; end = restart (ground truth)
    Gray,      ///< gray window run on a server (ground truth)
    LinkDrop,  ///< one dispatch message lost (ground truth)
    LinkDelay, ///< one dispatch message delayed (ground truth)
    AlertRaise,///< SLO monitor raised a tenant alert
    AlertClear,///< SLO monitor cleared a tenant alert
};

/** Stable event-kind name (the events CSV `kind` column). */
const char *eventKindName(EventKind kind);

/** One incident or alert event. */
struct Event {
    sim::Tick startTick = 0;
    sim::Tick endTick = 0;
    EventKind kind = EventKind::Crash;
    /** Server id, -1 for fleet/tenant-scoped events. */
    std::int32_t server = -1;
    /** Tenant index, -1 for server-scoped events. */
    std::int32_t tenant = -1;
    /** Alert burn rate at raise/clear; 0 for incidents. */
    double value = 0;
};

/**
 * The observability plane for one fleet run. See the file comment.
 */
class FleetObserver
{
  public:
    FleetObserver(const ObsConfig &cfg, unsigned num_servers,
                  std::vector<ObsTenant> tenants, unsigned concurrency,
                  double freq_ghz);

    FleetObserver(const FleetObserver &) = delete;
    FleetObserver &operator=(const FleetObserver &) = delete;

    const ObsConfig &config() const { return cfg_; }

    /** Telemetry window length in ticks (0 unless windowed). The
     * simulator schedules its flush ticks on this period so window
     * boundaries line up exactly with flushWindow() calls. */
    sim::Tick windowTicks() const { return windowTicks_; }

    // --- Request-path hooks (called by ClusterSim) ------------------

    /** Admitted arrival routed to @p server. */
    void onArrival(sim::Tick now, std::uint64_t req,
                   std::uint32_t tenant, std::uint32_t server,
                   bool measured);
    /** Arrival shed at admission (cap or open breaker). */
    void onShed(sim::Tick now, std::uint32_t tenant,
                std::uint32_t server, bool breaker);
    /** Copy entered a server's admission queue. */
    void onQueue(sim::Tick now, std::uint64_t req, unsigned copy,
                 std::uint32_t server);
    /** Copy started executing (cold = paid a cold start). */
    void onStart(sim::Tick now, std::uint64_t req, unsigned copy,
                 std::uint32_t server, std::uint32_t tenant,
                 bool cold);
    /** Copy completed; resolves the request. */
    void onComplete(sim::Tick now, std::uint64_t req, unsigned copy,
                    std::uint32_t server, std::uint32_t tenant,
                    std::uint64_t latency_ns, bool slo_miss);
    /** Request written off (final failure; no twin, no retry). */
    void onFailed(sim::Tick now, std::uint64_t req,
                  std::uint32_t tenant, std::uint32_t server);
    /** Hedge copy dispatched to @p server. */
    void onHedge(sim::Tick now, std::uint64_t req,
                 std::uint32_t server);
    /** Losing hedge copy cancelled on @p server. */
    void onHedgeLoser(sim::Tick now, std::uint64_t req, unsigned copy,
                      std::uint32_t server);
    /** Retry attempt @p attempt redispatched to @p server. */
    void onRetry(sim::Tick now, std::uint64_t req, unsigned attempt,
                 std::uint32_t server);
    /** A server's outstanding count changed (queue-depth gauge). */
    void onOutstanding(sim::Tick now, std::uint32_t server,
                       std::uint32_t outstanding);

    // --- Ground-truth incident hooks --------------------------------

    void onCrash(sim::Tick now, std::uint32_t server);
    void onRestart(sim::Tick now, std::uint32_t server);
    /** Pre-enumerated gray run [start, end) on @p server. */
    void onGrayRun(sim::Tick start, sim::Tick end,
                   std::uint32_t server);
    void onLinkDrop(sim::Tick now, std::uint64_t req,
                    std::uint32_t server);
    void onLinkDelay(sim::Tick now, std::uint64_t req,
                     std::uint32_t server);

    // --- Window boundary / end of run -------------------------------

    /**
     * Close the current telemetry window at @p now. @p snap holds one
     * entry per server (instantaneous queue/running/warm state). Runs
     * the SLO monitor on the flushed window.
     */
    void flushWindow(sim::Tick now, const std::vector<ServerSnapshot> &snap);

    /** Flush the trailing partial window and close open incidents. */
    void finalize(sim::Tick end, const std::vector<ServerSnapshot> &snap);

    // --- Artifacts --------------------------------------------------

    /** The fleet span trace (null unless config().trace). */
    const trace::Tracer *tracer() const { return tracer_.get(); }

    const std::vector<WindowRow> &windows() const { return rows_; }
    const std::vector<Event> &events() const { return events_; }

    /** Long-format telemetry CSV (one row per window x server, plus
     * per-tenant rows where the tenant had activity). */
    void writeWindowsCsv(std::ostream &out) const;

    /** Incident/alert event CSV, sorted by time. */
    void writeEventsCsv(std::ostream &out) const;

    /** Register end-of-run obs counters (alert/incident/window
     * totals) into @p registry under the `obs.` prefix. */
    void attachMetrics(trace::MetricsRegistry &registry) const;

    double freqGhz() const { return freqGhz_; }
    unsigned numServers() const { return numServers_; }
    const std::vector<ObsTenant> &tenants() const { return tenants_; }

  private:
    /** Per-(server, tenant) window accumulators. The counters are
     * cumulative; the flush takes window deltas via intervalReset()
     * so end-of-run totals survive for attachMetrics(). */
    struct Cell {
        trace::Counter arrivals;
        trace::Counter completions;
        trace::Counter shed;
        trace::Counter failed;
        trace::Counter sloMiss;
        trace::Counter coldStarts;
        stats::Histogram latNs;
    };

    /** Per-server time-integral of outstanding (queue depth). */
    struct DepthGauge {
        double integral = 0;
        sim::Tick last = 0;
        std::uint32_t cur = 0;
    };

    /** Per-tenant burn-rate ring entry: one flushed window. */
    struct BurnSample {
        std::uint64_t errors = 0;
        std::uint64_t arrivals = 0;
    };

    /** Per-request trace state (keyed lookups only, never iterated). */
    struct ReqTrace {
        trace::SpanId span = 0;
        sim::Tick enq[2] = {0, 0};
        sim::Tick run[2] = {0, 0};
        bool queued[2] = {false, false};
        bool running[2] = {false, false};
        bool cold[2] = {false, false};
    };

    Cell &cell(std::uint32_t server, std::uint32_t tenant)
    {
        return cells_[server * tenants_.size() + tenant];
    }
    unsigned serverTrack(std::uint32_t server) const
    {
        return server + 1;
    }
    double burnRate(const std::deque<BurnSample> &ring,
                    unsigned windows) const;
    void instant(const char *name, unsigned track, sim::Tick now,
                 std::uint64_t req, std::int32_t fn = -1);

    ObsConfig cfg_;
    unsigned numServers_;
    std::vector<ObsTenant> tenants_;
    unsigned concurrency_;
    double freqGhz_;
    sim::Tick windowTicks_ = 0;

    std::unique_ptr<trace::Tracer> tracer_;
    std::unordered_map<std::uint64_t, ReqTrace> reqs_;

    std::vector<Cell> cells_;
    std::vector<DepthGauge> depth_;
    std::vector<WindowRow> rows_;
    std::uint64_t window_ = 0;
    sim::Tick windowStart_ = 0;

    // SLO monitor.
    std::vector<std::deque<BurnSample>> burnRing_;
    std::vector<char> alerting_;

    // Incidents.
    std::vector<Event> events_;
    std::vector<sim::Tick> crashOpenAt_;
    static constexpr sim::Tick kNoTick = ~static_cast<sim::Tick>(0);

    // End-of-run totals.
    std::uint64_t alertsRaised_ = 0;
    std::uint64_t alertsCleared_ = 0;
    std::uint64_t incidents_ = 0;
};

} // namespace jord::obs

#endif // JORD_OBS_OBS_HH
