/**
 * @file
 * Machine configuration: the modelled CPU, memory hierarchy and
 * interconnect parameters (Table 2 of the paper), plus the scalability
 * variants of §6.3 and the FPGA profile of §6.2.
 */

#ifndef JORD_SIM_MACHINE_HH
#define JORD_SIM_MACHINE_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace jord::sim {

/**
 * Which hardware model produced the latencies.
 *
 * Raw SRAM latencies are identical in both profiles; operations involving
 * instruction execution run at a lower IPC on the FPGA RTL model because
 * the cycle-accurate simulator models a more aggressive pipeline (§6.2).
 */
enum class MachineProfile {
    Simulator, ///< QFlex-style cycle-accurate model (Table 2)
    Fpga,      ///< OpenXiangShan RTL on FPGA
};

/**
 * Full description of the modelled worker server.
 *
 * Defaults reproduce Table 2: 32-core 4 GHz OoO CPU, 8x4 2D-mesh NoC with
 * 16 B links and 3 cycles/hop, 32 KB L1s (2-cycle), 2 MB/tile non-inclusive
 * LLC (6-cycle), directory-based MESI, 4 memory controllers.
 */
struct MachineConfig {
    // --- Core ---
    double freqGhz = kDefaultFreqGhz;
    unsigned numCores = 32;
    unsigned robEntries = 128;
    unsigned storeBufferEntries = 32;
    unsigned issueWidth = 4;

    // --- Sockets (for the §6.3 scalability study) ---
    unsigned numSockets = 1;
    /** One-way extra latency for crossing the socket boundary. */
    Cycles interSocketCycles = nsToCycles(260.0);

    // --- NoC (per socket) ---
    unsigned meshCols = 8;
    unsigned meshRows = 4;
    Cycles hopCycles = 3;
    unsigned linkBytes = 16;

    // --- Cache hierarchy ---
    Cycles l1HitCycles = 2;
    /** L1D capacity in cache blocks (32 KB / 64 B, Table 2). */
    unsigned l1Lines = 512;
    Cycles llcHitCycles = 6;
    Cycles dramCycles = nsToCycles(100.0);
    unsigned numMemControllers = 4;

    // --- Conventional TLB hierarchy (baseline/page-table path) ---
    unsigned l1TlbEntries = 48;
    unsigned l2TlbEntries = 1024;
    unsigned l2TlbAssoc = 4;
    Cycles l2TlbCycles = 8;

    // --- UAT hardware (Jord) ---
    unsigned ivlbEntries = 16;
    unsigned dvlbEntries = 16;
    /** VTD: set-associative slice structure co-located with the LLC. */
    unsigned vtdSets = 256;
    unsigned vtdWays = 8;

    /** Which hardware model to emulate (affects software-op IPC only). */
    MachineProfile profile = MachineProfile::Simulator;
    /**
     * Multiplier on the instruction-execution component of software
     * operation latencies when running the FPGA profile. Calibrated so the
     * FPGA column of Table 4 emerges from the same operation recipes.
     */
    double fpgaIpcPenalty = 2.4;

    /** Cores per socket (cores are split evenly across sockets). */
    unsigned
    coresPerSocket() const
    {
        return numCores / numSockets;
    }

    /** Socket that owns a given core. */
    unsigned
    socketOf(unsigned core) const
    {
        return core / coresPerSocket();
    }

    /**
     * Event-execution domain owning a core when the machine's tiles
     * are partitioned into @p domains contiguous ranges for intra-run
     * parallel simulation. Contiguous ranges keep mesh neighbours —
     * and, when @p domains divides numSockets, whole sockets —
     * together, which maximizes the cross-domain NoC lookahead.
     */
    unsigned
    domainOf(unsigned core, unsigned domains) const
    {
        if (domains <= 1 || numCores == 0)
            return 0;
        return core * domains / numCores;
    }

    /** Scale factor applied to instruction-execution latency components. */
    double
    swLatencyScale() const
    {
        return profile == MachineProfile::Fpga ? fpgaIpcPenalty : 1.0;
    }

    /** The Table 2 configuration. */
    static MachineConfig isca25Default();

    /** FPGA proof-of-concept profile (two OpenXiangShan cores). */
    static MachineConfig fpgaPrototype();

    /**
     * Scalability-study configuration (§6.3): @p num_cores cores spread
     * over @p num_sockets sockets, mesh resized to the nearest balanced
     * rectangle per socket.
     */
    static MachineConfig scaled(unsigned num_cores, unsigned num_sockets);

    /** Human-readable one-line description. */
    std::string describe() const;
};

} // namespace jord::sim

#endif // JORD_SIM_MACHINE_HH
