/**
 * @file
 * Calendar-queue event storage: the sorted-heap replacement behind the
 * EventQueue hot path (jordprof self-profiling showed the global
 * binary heap's push/pop compares on every schedule/dispatch).
 *
 * A calendar queue (Brown, CACM 1988) hashes events by tick into an
 * array of buckets covering one "year" of simulated time. Pops touch
 * only the current bucket, which is sorted lazily the first time it is
 * drained; schedules append unsorted to a future bucket. Both are
 * O(1) amortized when the bucket width tracks the mean event gap,
 * against O(log n) heap compares for every operation.
 *
 * Determinism contract: pops come out in exactly the global
 * (when, seq) order of the EventQueue's binary-heap reference — the
 * lazy bucket sort uses the same key, and the near/far spill heaps
 * break ties identically — so replacing the storage cannot perturb a
 * single event interleaving (asserted by the byte-identity tests).
 *
 * Bucket vectors are recycled through a small arena (freed buckets
 * park their capacity instead of returning it to the allocator), so a
 * steady-state simulation stops allocating on the event path entirely.
 */

#ifndef JORD_SIM_CALENDAR_QUEUE_HH
#define JORD_SIM_CALENDAR_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace jord::sim {

/** Callback type invoked when an event fires. */
using EventFn = std::function<void()>;

/** One scheduled event, keyed by (when, seq). */
struct EventRecord {
    Tick when = 0;
    std::uint64_t seq = 0;
    std::uint64_t handle = 0;
    EventFn fn;
    bool daemon = false;
};

/** Strict weak order on the deterministic dispatch key. */
template <typename Record>
inline bool
eventBefore(const Record &a, const Record &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    return a.seq < b.seq;
}

/**
 * Time-bucketed event store with exact (when, seq) pop order.
 *
 * @tparam Record Any struct with `Tick when` and `std::uint64_t seq`
 *     key fields (EventRecord here, the epoch-parallel engine's
 *     richer record in par::DomainEngine).
 *
 * Structure: `nb` buckets of `width` ticks starting at `yearStart`
 * cover the current year. The current bucket is sorted descending and
 * drained from the back; later buckets collect unsorted appends.
 * Events landing at or before the current bucket (same-tick
 * reschedules, skipped-bucket stragglers) go to the `near` min-heap,
 * events beyond the year to the `far` min-heap. A pop compares the
 * current bucket's back against the near heap's top; year rollover
 * redistributes the far heap and retunes the bucket width to the
 * observed event span.
 */
template <typename Record>
class BasicCalendarQueue
{
  public:
    BasicCalendarQueue() { resize(kInitialBuckets, kInitialWidth, 0); }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Insert an event; any `when` is legal (caller checks "past"). */
    void
    push(Record rec)
    {
        ++size_;
        if (rec.when >= yearEnd_) {
            far_.push_back(std::move(rec));
            std::push_heap(far_.begin(), far_.end(), FarGreater{});
            return;
        }
        // Behind the calendar's base year: happens when this domain's
        // calendar rolled ahead of global time (all its events were
        // far-future) and a cross-domain push lands before the new
        // yearStart. bucketOf() would underflow, and the near heap
        // preserves exact order for anything at or behind the current
        // bucket anyway.
        if (rec.when < yearStart_) {
            near_.push_back(std::move(rec));
            std::push_heap(near_.begin(), near_.end(), FarGreater{});
            return;
        }
        std::size_t idx = bucketOf(rec.when);
        if (idx <= curIdx_) {
            near_.push_back(std::move(rec));
            std::push_heap(near_.begin(), near_.end(), FarGreater{});
            return;
        }
        buckets_[idx].push_back(std::move(rec));
    }

    /**
     * The dispatch key of the next event, or nullptr when empty.
     * Non-const: advancing to the next non-empty bucket (and year
     * rollover) happens lazily here.
     */
    const Record *
    peek()
    {
        if (size_ == 0)
            return nullptr;
        settle();
        if (!near_.empty() &&
            (cur_.empty() || eventBefore(near_.front(), cur_.back())))
            return &near_.front();
        return &cur_.back();
    }

    /** Remove and return the next event; the queue must be non-empty. */
    Record
    pop()
    {
        const Record *next = peek();
        Record out;
        if (!near_.empty() && next == &near_.front()) {
            std::pop_heap(near_.begin(), near_.end(), FarGreater{});
            out = std::move(near_.back());
            near_.pop_back();
        } else {
            out = std::move(cur_.back());
            cur_.pop_back();
        }
        --size_;
        return out;
    }

    /** Drop everything and reset the year to tick zero. */
    void
    clear()
    {
        for (std::vector<Record> &b : buckets_)
            recycle(b);
        recycle(cur_);
        near_.clear();
        far_.clear();
        size_ = 0;
        curIdx_ = 0;
        yearStart_ = 0;
        yearEnd_ = width_ * static_cast<Tick>(buckets_.size());
    }

  private:
    static constexpr std::size_t kInitialBuckets = 256;
    static constexpr Tick kInitialWidth = 64;
    /** Retune width when the mean far-event gap drifts past 4x. */
    static constexpr Tick kRetuneFactor = 4;

    /** Min-heap comparator (std heaps are max-heaps). */
    struct FarGreater {
        bool
        operator()(const Record &a, const Record &b) const
        {
            return eventBefore(b, a);
        }
    };

    std::size_t
    bucketOf(Tick when) const
    {
        return static_cast<std::size_t>((when - yearStart_) / width_);
    }

    /** Park a vector's capacity for reuse instead of freeing it. */
    void
    recycle(std::vector<Record> &bucket)
    {
        bucket.clear();
        if (bucket.capacity() > 0 && arena_.size() < buckets_.size())
            arena_.push_back(std::move(bucket));
        bucket = std::vector<Record>();
    }

    std::vector<Record>
    takeFromArena()
    {
        if (arena_.empty())
            return {};
        std::vector<Record> v = std::move(arena_.back());
        arena_.pop_back();
        return v;
    }

    void
    resize(std::size_t nb, Tick width, Tick year_start)
    {
        buckets_.assign(nb, {});
        width_ = std::max<Tick>(1, width);
        yearStart_ = year_start;
        yearEnd_ = yearStart_ + width_ * static_cast<Tick>(nb);
        curIdx_ = 0;
        recycle(cur_);
    }

    /** Make `cur_`/`near_` hold the next event, rolling years over. */
    void
    settle()
    {
        while (cur_.empty()) {
            if (!near_.empty())
                return; // stragglers for the current bucket remain
            // Advance to the next populated bucket of this year.
            std::size_t idx = curIdx_ + 1;
            while (idx < buckets_.size() && buckets_[idx].empty())
                ++idx;
            if (idx < buckets_.size()) {
                curIdx_ = idx;
                recycle(cur_);
                cur_ = std::move(buckets_[idx]);
                buckets_[idx] = takeFromArena();
                sortCurrent();
                continue;
            }
            rollover();
        }
    }

    /** Descending sort so the drain pops from the back. */
    void
    sortCurrent()
    {
        std::sort(cur_.begin(), cur_.end(),
                  [](const Record &a, const Record &b) {
                      return eventBefore(b, a);
                  });
    }

    /**
     * The year (and near heap) is empty but far events remain: re-base
     * the calendar on the earliest far event and redistribute. The
     * bucket width is retuned to the far population's mean gap so a
     * sparse tail (daemon timers, deadline horizons) does not leave
     * thousands of empty buckets to skip.
     */
    void
    rollover()
    {
        // settle() only gets here with cur_, near_ and every bucket
        // empty; size_ > 0 then guarantees the events are all in far_.
        if (far_.empty())
            panic("calendar queue: %zu events unaccounted for at "
                  "rollover (internal error)",
                  size_);
        Tick lo = kTickMax;
        Tick hi = 0;
        for (const Record &rec : far_) {
            lo = std::min(lo, rec.when);
            hi = std::max(hi, rec.when);
        }
        Tick span = hi - lo + 1;
        Tick ideal = std::max<Tick>(
            1, span / static_cast<Tick>(buckets_.size()) + 1);
        if (ideal > width_ * kRetuneFactor ||
            ideal * kRetuneFactor < width_)
            width_ = ideal;
        yearStart_ = lo;
        yearEnd_ = yearStart_ + width_ * static_cast<Tick>(buckets_.size());
        curIdx_ = 0;
        recycle(cur_);

        std::vector<Record> keep;
        for (Record &rec : far_) {
            if (rec.when >= yearEnd_) {
                keep.push_back(std::move(rec));
                continue;
            }
            std::size_t idx = bucketOf(rec.when);
            if (idx == 0)
                cur_.push_back(std::move(rec));
            else
                buckets_[idx].push_back(std::move(rec));
        }
        far_ = std::move(keep);
        std::make_heap(far_.begin(), far_.end(), FarGreater{});
        sortCurrent();
    }

    std::vector<std::vector<Record>> buckets_;
    /** Parked bucket capacity (the event-storage arena). */
    std::vector<std::vector<Record>> arena_;
    /** Current bucket, sorted descending; drains from the back. */
    std::vector<Record> cur_;
    /** Heap of events at/behind the current bucket (dense near-term). */
    std::vector<Record> near_;
    /** Heap of events beyond the current year. */
    std::vector<Record> far_;
    Tick width_ = kInitialWidth;
    Tick yearStart_ = 0;
    Tick yearEnd_ = 0;
    std::size_t curIdx_ = 0;
    std::size_t size_ = 0;
};

/** The EventQueue's storage: calendar queue over plain events. */
using CalendarQueue = BasicCalendarQueue<EventRecord>;

} // namespace jord::sim

#endif // JORD_SIM_CALENDAR_QUEUE_HH
