#include "sim/env.hh"

#include <cstdlib>

namespace jord::sim::env {

const char *
get(const char *name)
{
    // The one sanctioned environment read in the tree. Every other
    // call site goes through this module so config stays auditable.
    // detlint: allow(D1, "the single annotated sim::env entry point")
    return std::getenv(name);
}

std::uint64_t
getU64(const char *name, std::uint64_t fallback)
{
    const char *v = get(name);
    return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

} // namespace jord::sim::env
