/**
 * @file
 * The simulator's single process-environment entry point.
 *
 * Environment variables are host state: reading them ad hoc scatters
 * nondeterminism through the tree and makes runs impossible to audit.
 * All reads therefore funnel through this one module — the only place
 * allowed to call std::getenv (enforced statically by detlint rule D1).
 * Everything an env var can influence is config, resolved once at
 * startup, never mid-run.
 */

#ifndef JORD_SIM_ENV_HH
#define JORD_SIM_ENV_HH

#include <cstdint>

namespace jord::sim::env {

/**
 * Read @p name from the process environment.
 *
 * @return the raw value, or nullptr when unset.
 */
const char *get(const char *name);

/**
 * Read @p name as an unsigned integer.
 *
 * @return the parsed value, or @p fallback when the variable is unset.
 *         A set-but-unparsable value yields 0, matching strtoull.
 */
std::uint64_t getU64(const char *name, std::uint64_t fallback);

} // namespace jord::sim::env

#endif // JORD_SIM_ENV_HH
