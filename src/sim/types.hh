/**
 * @file
 * Fundamental simulation types: ticks, cycles, time conversion.
 *
 * The simulator advances in integer ticks. One tick equals one core clock
 * cycle of the modelled machine (4 GHz by default, Table 2 of the paper),
 * so 1 tick = 0.25 ns at the default frequency. All latency parameters in
 * the machine configuration are expressed in cycles; statistics convert to
 * nanoseconds/microseconds at reporting time.
 */

#ifndef JORD_SIM_TYPES_HH
#define JORD_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace jord::sim {

/** Simulated time in core clock cycles. */
using Tick = std::uint64_t;

/** A (virtual or physical) memory address in the modelled machine. */
using Addr = std::uint64_t;

/** Cache block size in bytes; the coherence unit (Table 2). */
inline constexpr std::uint64_t kCacheBlockBytes = 64;

/** Align an address down to its cache block. */
inline constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~(kCacheBlockBytes - 1);
}

/** A duration in core clock cycles. */
using Cycles = std::uint64_t;

/** Sentinel for "no deadline" / "never". */
inline constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Default core clock frequency in GHz (Table 2). */
inline constexpr double kDefaultFreqGhz = 4.0;

/** Convert a cycle count to nanoseconds at a given frequency. */
inline constexpr double
cyclesToNs(Cycles cycles, double freq_ghz = kDefaultFreqGhz)
{
    return static_cast<double>(cycles) / freq_ghz;
}

/** Convert a cycle count to microseconds at a given frequency. */
inline constexpr double
cyclesToUs(Cycles cycles, double freq_ghz = kDefaultFreqGhz)
{
    return cyclesToNs(cycles, freq_ghz) / 1000.0;
}

/** Convert nanoseconds to cycles (rounding to nearest) at a frequency. */
inline constexpr Cycles
nsToCycles(double ns, double freq_ghz = kDefaultFreqGhz)
{
    return static_cast<Cycles>(ns * freq_ghz + 0.5);
}

/** Convert microseconds to cycles at a given frequency. */
inline constexpr Cycles
usToCycles(double us, double freq_ghz = kDefaultFreqGhz)
{
    return nsToCycles(us * 1000.0, freq_ghz);
}

} // namespace jord::sim

#endif // JORD_SIM_TYPES_HH
