#include "sim/rng.hh"

#include <cmath>

namespace jord::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // modulo bias is negligible for simulation workloads but we still use
    // the widening multiply to avoid it entirely for small n.
    unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * n;
    return static_cast<std::uint64_t>(product >> 64);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(theta);
    hasCachedNormal_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::boundedPareto(double lo, double hi, double alpha)
{
    double u = uniform();
    double la = std::pow(lo, alpha);
    double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xdeadbeefcafef00dull);
}

} // namespace jord::sim
