#include "sim/machine.hh"

#include <cmath>

#include "sim/logging.hh"

namespace jord::sim {

MachineConfig
MachineConfig::isca25Default()
{
    return MachineConfig{};
}

MachineConfig
MachineConfig::fpgaPrototype()
{
    MachineConfig cfg;
    cfg.profile = MachineProfile::Fpga;
    // The XCVU19P board only fits two OpenXiangShan cores (§5).
    cfg.numCores = 2;
    cfg.meshCols = 2;
    cfg.meshRows = 1;
    return cfg;
}

MachineConfig
MachineConfig::scaled(unsigned num_cores, unsigned num_sockets)
{
    if (num_cores == 0 || num_sockets == 0 ||
        num_cores % num_sockets != 0) {
        fatal("invalid scaled machine: %u cores over %u sockets",
              num_cores, num_sockets);
    }
    MachineConfig cfg;
    cfg.numCores = num_cores;
    cfg.numSockets = num_sockets;

    // Resize the per-socket mesh to the most square rectangle that holds
    // cores_per_socket tiles, keeping cols >= rows like the 8x4 default.
    unsigned per_socket = num_cores / num_sockets;
    unsigned rows = static_cast<unsigned>(std::sqrt(per_socket));
    while (rows > 1 && per_socket % rows != 0)
        --rows;
    unsigned cols = per_socket / rows;
    if (cols < rows)
        std::swap(cols, rows);
    cfg.meshCols = cols;
    cfg.meshRows = rows;
    return cfg;
}

std::string
MachineConfig::describe() const
{
    return strprintf(
        "%u-core %.1f GHz, %u socket(s), %ux%u mesh/socket, "
        "L1 %llu cyc, LLC %llu cyc, hop %llu cyc, %s",
        numCores, freqGhz, numSockets, meshCols, meshRows,
        static_cast<unsigned long long>(l1HitCycles),
        static_cast<unsigned long long>(llcHitCycles),
        static_cast<unsigned long long>(hopCycles),
        profile == MachineProfile::Fpga ? "FPGA profile" : "simulator");
}

} // namespace jord::sim
