/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled at the same tick fire in insertion order (FIFO), which
 * together with the seeded RNG makes every simulation run bit-reproducible.
 */

#ifndef JORD_SIM_EVENT_QUEUE_HH
#define JORD_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace jord::sim {

/** Callback type invoked when an event fires. */
using EventFn = std::function<void()>;

/**
 * A time-ordered queue of callbacks with deterministic tie-breaking.
 *
 * The queue owns the notion of "now": curTick() advances only as events are
 * dispatched. Clients schedule callbacks at absolute ticks or relative
 * delays and drive the simulation with run() / runUntil() / step().
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks. */
    Tick curTick() const { return curTick_; }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** True when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Total number of events dispatched so far. */
    std::uint64_t numDispatched() const { return numDispatched_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must not be in the past.
     * @param fn Callback to invoke.
     * @return A handle that can be passed to cancel().
     */
    std::uint64_t schedule(Tick when, EventFn fn);

    /** Schedule a callback @p delay ticks after the current time. */
    std::uint64_t
    scheduleAfter(Cycles delay, EventFn fn)
    {
        return schedule(curTick_ + delay, std::move(fn));
    }

    /**
     * Schedule a *daemon* callback: observer events (the sampling
     * profiler) that must not count as simulated work. Daemon events
     * fire like regular events but do not advance lastWorkTick(), so
     * a trailing daemon event cannot stretch a run's measured window.
     */
    std::uint64_t scheduleDaemon(Tick when, EventFn fn);

    std::uint64_t
    scheduleDaemonAfter(Cycles delay, EventFn fn)
    {
        return scheduleDaemon(curTick_ + delay, std::move(fn));
    }

    /** Tick of the most recently dispatched non-daemon event. */
    Tick lastWorkTick() const { return lastWorkTick_; }

    /**
     * Cancel a previously scheduled event.
     *
     * @retval true if the event was pending and is now cancelled.
     * @retval false if it already fired or was already cancelled.
     */
    bool cancel(std::uint64_t handle);

    /**
     * Dispatch the single next event.
     *
     * @retval true an event was dispatched.
     * @retval false the queue was empty.
     */
    bool step();

    /** Run until the queue drains. @return final tick. */
    Tick run();

    /**
     * Run until the queue drains or simulated time would exceed @p limit.
     * Events scheduled exactly at @p limit still fire.
     */
    Tick runUntil(Tick limit);

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        std::uint64_t handle;
        EventFn fn;
        bool daemon = false;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    using Heap = std::priority_queue<Entry, std::vector<Entry>,
                                     std::greater<Entry>>;

    Heap heap_;
    Tick curTick_ = 0;
    Tick lastWorkTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextHandle_ = 1;
    std::uint64_t numDispatched_ = 0;
    /**
     * Handles cancelled while still in the heap (lazy deletion).
     * A hash set keeps cancel() and the dispatch-time check O(1):
     * hedged cluster requests cancel one event per request, which
     * made the previous linear-scan list a hot path.
     */
    std::unordered_set<std::uint64_t> cancelled_;

    bool isCancelled(std::uint64_t handle) const;
    void forgetCancelled(std::uint64_t handle);
};

} // namespace jord::sim

#endif // JORD_SIM_EVENT_QUEUE_HH
