/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled at the same tick fire in insertion order (FIFO), which
 * together with the seeded RNG makes every simulation run bit-reproducible.
 *
 * Storage is a calendar queue per *domain* (see setDomains()): clients
 * that partition their simulated machine — worker cores, cluster
 * servers — tag each event with its owning domain so the pending set
 * is split into K independent sub-queues. Dispatch still follows the
 * single global (when, seq) order across all domains, so the
 * simulated outcome is byte-identical at any K; the split is what the
 * epoch-parallel engine (par::DomainEngine) and the per-domain
 * occupancy accessors build on.
 */

#ifndef JORD_SIM_EVENT_QUEUE_HH
#define JORD_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/calendar_queue.hh"
#include "sim/types.hh"

namespace jord::sim {

/**
 * A time-ordered queue of callbacks with deterministic tie-breaking.
 *
 * The queue owns the notion of "now": curTick() advances only as events are
 * dispatched. Clients schedule callbacks at absolute ticks or relative
 * delays and drive the simulation with run() / runUntil() / step().
 */
class EventQueue
{
  public:
    EventQueue() : domains_(1) {}

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks. */
    Tick curTick() const { return curTick_; }

    /** Number of pending events across all domains. */
    std::size_t size() const { return size_; }

    /** True when no events are pending. */
    bool empty() const { return size_ == 0; }

    /** Total number of events dispatched so far. */
    std::uint64_t numDispatched() const { return numDispatched_; }

    /**
     * Partition the pending set into @p n independent sub-queues.
     *
     * Must be called while the queue is empty (panics otherwise): a
     * repartition would have to rehash every pending event. Events
     * keep firing in global (when, seq) order regardless of n;
     * reset() preserves the partition.
     */
    void setDomains(unsigned n);

    /** Number of event sub-queues (>= 1). */
    unsigned
    numDomains() const
    {
        return static_cast<unsigned>(domains_.size());
    }

    /** Pending events in one domain's sub-queue. */
    std::size_t domainSize(unsigned domain) const;

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must not be in the past.
     * @param fn Callback to invoke.
     * @return A handle that can be passed to cancel().
     */
    std::uint64_t
    schedule(Tick when, EventFn fn)
    {
        return scheduleOn(0, when, std::move(fn));
    }

    /** Schedule a callback @p delay ticks after the current time. */
    std::uint64_t
    scheduleAfter(Cycles delay, EventFn fn)
    {
        return schedule(curTick_ + delay, std::move(fn));
    }

    /** schedule() into a specific domain's sub-queue. */
    std::uint64_t scheduleOn(unsigned domain, Tick when, EventFn fn);

    /** scheduleAfter() into a specific domain's sub-queue. */
    std::uint64_t
    scheduleAfterOn(unsigned domain, Cycles delay, EventFn fn)
    {
        return scheduleOn(domain, curTick_ + delay, std::move(fn));
    }

    /**
     * Schedule a *daemon* callback: observer events (the sampling
     * profiler) that must not count as simulated work. Daemon events
     * fire like regular events but do not advance lastWorkTick(), so
     * a trailing daemon event cannot stretch a run's measured window.
     */
    std::uint64_t
    scheduleDaemon(Tick when, EventFn fn)
    {
        return scheduleDaemonOn(0, when, std::move(fn));
    }

    std::uint64_t
    scheduleDaemonAfter(Cycles delay, EventFn fn)
    {
        return scheduleDaemon(curTick_ + delay, std::move(fn));
    }

    /** scheduleDaemon() into a specific domain's sub-queue. */
    std::uint64_t scheduleDaemonOn(unsigned domain, Tick when, EventFn fn);

    /** Tick of the most recently dispatched non-daemon event. */
    Tick lastWorkTick() const { return lastWorkTick_; }

    /**
     * Cancel a previously scheduled event.
     *
     * @retval true if the event was pending and is now cancelled.
     * @retval false if it already fired, was already cancelled, or
     *     never existed. Stale handles are detected exactly (a dense
     *     liveness window tracks every in-flight handle), so a stale
     *     cancel can no longer plant a permanent tombstone.
     */
    bool cancel(std::uint64_t handle);

    /**
     * Cancelled-but-not-yet-popped entries (lazy-deletion tombstones).
     * Bounded by the pending-event count: each tombstone is purged
     * when its entry's tick passes. Exposed for the regression test.
     */
    std::size_t numTombstones() const { return cancelled_.size(); }

    /**
     * Dispatch the single next event.
     *
     * @retval true an event was dispatched.
     * @retval false the queue was empty.
     */
    bool step();

    /** Run until the queue drains. @return final tick. */
    Tick run();

    /**
     * Run until the queue drains or simulated time would exceed @p limit.
     * Events scheduled exactly at @p limit still fire.
     */
    Tick runUntil(Tick limit);

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    /** Liveness-window slot states (indexed by handle - aliveBase_). */
    static constexpr unsigned char kPending = 1;
    static constexpr unsigned char kDone = 0;

    std::uint64_t push(unsigned domain, Tick when, EventFn fn, bool daemon);
    /** Min (when, seq) entry across domains, or nullptr when empty. */
    const EventRecord *peekNext(unsigned &domain);
    /** Mark a handle fired/cancelled and trim the liveness window. */
    void retire(std::uint64_t handle);

    std::vector<CalendarQueue> domains_;
    Tick curTick_ = 0;
    Tick lastWorkTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextHandle_ = 1;
    std::uint64_t numDispatched_ = 0;
    std::size_t size_ = 0;
    /**
     * Handles cancelled while still queued (lazy deletion). The
     * dense liveness window below guarantees only *pending* handles
     * enter this set, and dispatch purges each tombstone when its
     * entry pops at its tick — so the set is bounded by the in-flight
     * cancelled count instead of growing for the whole run.
     */
    std::unordered_set<std::uint64_t> cancelled_;
    /**
     * Sliding liveness window: slot (h - aliveBase_) says whether
     * handle h is still queued. Handles are issued sequentially, so a
     * deque indexed by handle is O(1) and compacts itself as the
     * oldest handles retire.
     */
    std::deque<unsigned char> alive_;
    std::uint64_t aliveBase_ = 1;

    bool isCancelled(std::uint64_t handle) const;
    void forgetCancelled(std::uint64_t handle);
};

} // namespace jord::sim

#endif // JORD_SIM_EVENT_QUEUE_HH
