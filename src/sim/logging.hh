/**
 * @file
 * Error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() flags an internal simulator bug and aborts; fatal() flags a user
 * configuration error and exits cleanly; warn()/inform() report conditions
 * without stopping the simulation.
 */

#ifndef JORD_SIM_LOGGING_HH
#define JORD_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace jord::sim {

/** Abort with a message: something that should never happen did happen. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit with a message: the user supplied an impossible configuration. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list args);

/** Format a printf-style message into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace jord::sim

#endif // JORD_SIM_LOGGING_HH
