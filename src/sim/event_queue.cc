#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace jord::sim {

void
EventQueue::setDomains(unsigned n)
{
    if (n == 0)
        panic("EventQueue::setDomains: need at least one domain");
    if (size_ != 0)
        panic("EventQueue::setDomains: cannot repartition %zu pending "
              "events", size_);
    domains_.clear();
    domains_.resize(n);
}

std::size_t
EventQueue::domainSize(unsigned domain) const
{
    if (domain >= domains_.size())
        panic("EventQueue: domain %u out of range (have %zu)", domain,
              domains_.size());
    return domains_[domain].size();
}

std::uint64_t
EventQueue::push(unsigned domain, Tick when, EventFn fn, bool daemon)
{
    if (when < curTick_)
        panic("scheduling event in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    if (domain >= domains_.size())
        panic("EventQueue: domain %u out of range (have %zu)", domain,
              domains_.size());
    std::uint64_t handle = nextHandle_++;
    alive_.push_back(kPending);
    domains_[domain].push(
        EventRecord{when, nextSeq_++, handle, std::move(fn), daemon});
    ++size_;
    return handle;
}

std::uint64_t
EventQueue::scheduleOn(unsigned domain, Tick when, EventFn fn)
{
    return push(domain, when, std::move(fn), false);
}

std::uint64_t
EventQueue::scheduleDaemonOn(unsigned domain, Tick when, EventFn fn)
{
    return push(domain, when, std::move(fn), true);
}

bool
EventQueue::isCancelled(std::uint64_t handle) const
{
    return cancelled_.count(handle) != 0;
}

void
EventQueue::forgetCancelled(std::uint64_t handle)
{
    cancelled_.erase(handle);
}

void
EventQueue::retire(std::uint64_t handle)
{
    if (handle < aliveBase_)
        return; // window already slid past (reset() re-bases)
    alive_[handle - aliveBase_] = kDone;
    while (!alive_.empty() && alive_.front() == kDone) {
        alive_.pop_front();
        ++aliveBase_;
    }
}

bool
EventQueue::cancel(std::uint64_t handle)
{
    if (handle == 0 || handle >= nextHandle_ || handle < aliveBase_)
        return false;
    if (alive_[handle - aliveBase_] != kPending)
        return false; // already fired or already cancelled
    retire(handle);
    // The entry itself stays queued (lazy deletion); dispatch drops it
    // and purges this tombstone when its tick passes.
    cancelled_.insert(handle);
    return true;
}

const EventRecord *
EventQueue::peekNext(unsigned &domain)
{
    const EventRecord *best = nullptr;
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        const EventRecord *rec = domains_[i].peek();
        if (rec != nullptr && (best == nullptr || eventBefore(*rec, *best))) {
            best = rec;
            domain = static_cast<unsigned>(i);
        }
    }
    return best;
}

bool
EventQueue::step()
{
    while (size_ != 0) {
        unsigned domain = 0;
        peekNext(domain);
        EventRecord entry = domains_[domain].pop();
        --size_;
        if (isCancelled(entry.handle)) {
            forgetCancelled(entry.handle);
            continue;
        }
        retire(entry.handle);
        curTick_ = entry.when;
        if (!entry.daemon)
            lastWorkTick_ = entry.when;
        ++numDispatched_;
        entry.fn();
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return curTick_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (size_ != 0) {
        unsigned domain = 0;
        const EventRecord *next = peekNext(domain);
        if (next->when > limit)
            break;
        step();
    }
    if (curTick_ < limit)
        curTick_ = limit;
    return curTick_;
}

void
EventQueue::reset()
{
    for (CalendarQueue &q : domains_)
        q.clear();
    curTick_ = 0;
    lastWorkTick_ = 0;
    nextSeq_ = 0;
    numDispatched_ = 0;
    size_ = 0;
    cancelled_.clear();
    alive_.clear();
    aliveBase_ = nextHandle_;
}

} // namespace jord::sim
