#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace jord::sim {

std::uint64_t
EventQueue::schedule(Tick when, EventFn fn)
{
    if (when < curTick_)
        panic("scheduling event in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    std::uint64_t handle = nextHandle_++;
    heap_.push(Entry{when, nextSeq_++, handle, std::move(fn), false});
    return handle;
}

std::uint64_t
EventQueue::scheduleDaemon(Tick when, EventFn fn)
{
    if (when < curTick_)
        panic("scheduling event in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    std::uint64_t handle = nextHandle_++;
    heap_.push(Entry{when, nextSeq_++, handle, std::move(fn), true});
    return handle;
}

bool
EventQueue::isCancelled(std::uint64_t handle) const
{
    return cancelled_.count(handle) != 0;
}

void
EventQueue::forgetCancelled(std::uint64_t handle)
{
    cancelled_.erase(handle);
}

bool
EventQueue::cancel(std::uint64_t handle)
{
    if (handle == 0 || handle >= nextHandle_ || isCancelled(handle))
        return false;
    // We cannot cheaply verify the handle is still in the heap; record it
    // and filter at dispatch. Handles are unique, so a stale cancel of an
    // already-fired event leaves a harmless tombstone that is never matched.
    cancelled_.insert(handle);
    return true;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry entry = heap_.top();
        heap_.pop();
        if (isCancelled(entry.handle)) {
            forgetCancelled(entry.handle);
            continue;
        }
        curTick_ = entry.when;
        if (!entry.daemon)
            lastWorkTick_ = entry.when;
        ++numDispatched_;
        entry.fn();
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return curTick_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty()) {
        if (heap_.top().when > limit)
            break;
        step();
    }
    if (curTick_ < limit && heap_.empty())
        curTick_ = limit;
    else if (curTick_ < limit)
        curTick_ = limit;
    return curTick_;
}

void
EventQueue::reset()
{
    heap_ = Heap();
    curTick_ = 0;
    lastWorkTick_ = 0;
    nextSeq_ = 0;
    numDispatched_ = 0;
    cancelled_.clear();
}

} // namespace jord::sim
