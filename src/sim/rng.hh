/**
 * @file
 * Deterministic random number generation for workload models.
 *
 * Wraps xoshiro256** with the distribution helpers the load generator and
 * workload models need (uniform, exponential for Poisson arrivals, bounded
 * Pareto and lognormal for service-time tails). All randomness in the
 * simulator flows through seeded Rng instances, never through std::random
 * device state, so runs are reproducible.
 */

#ifndef JORD_SIM_RNG_HH
#define JORD_SIM_RNG_HH

#include <array>
#include <cstdint>

namespace jord::sim {

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @p n must be non-zero. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponential variate with the given mean (Poisson inter-arrivals). */
    double exponential(double mean);

    /** Standard normal variate (Box-Muller, cached second value). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Lognormal variate parameterised by the mean/sigma of log-space. */
    double lognormal(double mu, double sigma);

    /**
     * Bounded Pareto variate in [lo, hi] with shape @p alpha.
     * Used for heavy-tailed service-time components.
     */
    double boundedPareto(double lo, double hi, double alpha);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /** Split off an independent child generator (for per-core streams). */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace jord::sim

#endif // JORD_SIM_RNG_HH
