/**
 * @file
 * Chunked append-only arena for hot-loop record streams.
 *
 * The simulator's record streams (trace spans, profiler samples) grow
 * monotonically to millions of entries; a plain std::vector pays a
 * full copy of the stream at every capacity doubling, right in the
 * event dispatch hot loop. The arena stores records in fixed-size
 * chunks instead: append is O(1) with no copy ever, addresses are
 * stable for the arena's lifetime, and clear() parks the chunks for
 * reuse so a cleared-and-refilled arena allocates nothing.
 *
 * Deliberately minimal: append, indexed access, const iteration —
 * exactly the surface the exporters and analyzers use. No erase, no
 * insert, no contiguity guarantee across chunk boundaries.
 */

#ifndef JORD_SIM_ARENA_HH
#define JORD_SIM_ARENA_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace jord::sim {

template <typename T, std::size_t ChunkSize = std::size_t{1} << 14>
class Arena
{
    static_assert(ChunkSize > 0, "arena chunks must hold records");

  public:
    /** Records stored (not capacity). */
    std::size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    T &
    operator[](std::size_t i)
    {
        return chunks_[i / ChunkSize][i % ChunkSize];
    }

    const T &
    operator[](std::size_t i) const
    {
        return chunks_[i / ChunkSize][i % ChunkSize];
    }

    /** Append a record; never relocates existing records. */
    T &
    push_back(T value)
    {
        std::size_t chunk = size_ / ChunkSize;
        std::size_t slot = size_ % ChunkSize;
        if (chunk == chunks_.size()) {
            chunks_.emplace_back();
            chunks_.back().reserve(ChunkSize);
        }
        std::vector<T> &c = chunks_[chunk];
        ++size_;
        if (slot < c.size()) {
            // Parked slot from a previous generation: reuse in place.
            c[slot] = std::move(value);
            return c[slot];
        }
        c.push_back(std::move(value));
        return c.back();
    }

    /** Forget every record but park the chunks for reuse. */
    void
    clear()
    {
        size_ = 0;
    }

    /** Const forward iteration (range-for over exporters/analyzers). */
    class const_iterator
    {
      public:
        const_iterator(const Arena &arena, std::size_t pos)
            : arena_(&arena), pos_(pos)
        {
        }

        const T &operator*() const { return (*arena_)[pos_]; }
        const T *operator->() const { return &(*arena_)[pos_]; }

        const_iterator &
        operator++()
        {
            ++pos_;
            return *this;
        }

        bool
        operator==(const const_iterator &other) const
        {
            return pos_ == other.pos_;
        }

        bool
        operator!=(const const_iterator &other) const
        {
            return pos_ != other.pos_;
        }

      private:
        const Arena *arena_;
        std::size_t pos_;
    };

    const_iterator begin() const { return const_iterator(*this, 0); }
    const_iterator end() const { return const_iterator(*this, size_); }

  private:
    std::vector<std::vector<T>> chunks_;
    std::size_t size_ = 0;
};

} // namespace jord::sim

#endif // JORD_SIM_ARENA_HH
