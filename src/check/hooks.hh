/**
 * @file
 * JordSan hook interface: the event stream the checked system emits.
 *
 * UatSystem and PrivLib hold a `CheckHooks *` that is null unless a
 * sanitizer is attached (jordsim --check, or the test fixture). Every
 * hook call sits behind a pointer guard, mirroring the tracer pattern,
 * and no hook ever charges latency — a run with checking enabled is
 * timing-identical to one without.
 *
 * The interface is header-only with no-op defaults so that jord_uat and
 * jord_privlib depend only on this header, not on the jord_check
 * library (the concrete Checker lives there and links *against*
 * jord_uat for the mirror tables).
 */

#ifndef JORD_CHECK_HOOKS_HH
#define JORD_CHECK_HOOKS_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "uat/fault.hh"
#include "uat/vlb.hh"
#include "uat/vte.hh"

namespace jord::check {

/**
 * Observation points of the isolation machinery. All callbacks are
 * informational: implementations must not mutate the observed system.
 */
class CheckHooks
{
  public:
    virtual ~CheckHooks() = default;

    // --- UAT access path (hardware side) ---------------------------

    /**
     * A timed load/store/fetch finished resolving.
     *
     * @param corePriv the core's P-bit state *before* the access.
     * @param uatEnabled the core's uatp enable bit at access time.
     * @param actual the fault the real hardware raised (None if the
     *        access was permitted).
     */
    virtual void
    onAccess(unsigned core, sim::Addr va, uat::Perm need, uat::PdId pd,
             bool corePriv, bool isFetch, bool uatEnabled,
             uat::Fault actual)
    {
        (void)core; (void)va; (void)need; (void)pd; (void)corePriv;
        (void)isFetch; (void)uatEnabled; (void)actual;
    }

    /** A VTW walk installed @p entry into core's I- or D-VLB. */
    virtual void
    onVlbFill(unsigned core, bool isInstr, const uat::VlbEntry &entry)
    {
        (void)core; (void)isInstr; (void)entry;
    }

    /** An access translated through a cached VLB entry (a hit). */
    virtual void
    onVlbUse(unsigned core, bool isInstr, sim::Addr vteAddr,
             uat::PdId pd)
    {
        (void)core; (void)isInstr; (void)vteAddr; (void)pd;
    }

    /**
     * A T-bit write to @p vteAddr invalidated the VLBs of @p targets
     * (always including the writing core itself). A local-only
     * refresh reports targets == {writerCore}.
     */
    virtual void
    onShootdown(sim::Addr vteAddr, unsigned writerCore,
                const std::vector<unsigned> &targets)
    {
        (void)vteAddr; (void)writerCore; (void)targets;
    }

    /**
     * A VTD capacity eviction back-invalidated @p targets' VLB copies
     * of @p vteAddr. Unlike a shootdown this carries no semantic
     * change to the translation: untargeted holders stay coherent.
     */
    virtual void
    onBackInvalidate(sim::Addr vteAddr,
                     const std::vector<unsigned> &targets)
    {
        (void)vteAddr; (void)targets;
    }

    /** A uatg call gate was registered at @p va. */
    virtual void onGateAdded(sim::Addr va) { (void)va; }

    // --- PrivLib mutations (software side) -------------------------
    //
    // All PrivLib hooks fire only on *successful* operations, after
    // the real VMA table was updated; @p vte snapshots the final VTE
    // content so the differential table checker can replay it.

    virtual void
    onVmaMapped(unsigned core, uat::PdId pd, sim::Addr base,
                std::uint64_t len, uat::Perm prot, sim::Addr vteAddr,
                const uat::Vte &vte)
    {
        (void)core; (void)pd; (void)base; (void)len; (void)prot;
        (void)vteAddr; (void)vte;
    }

    virtual void
    onVmaUnmapped(unsigned core, sim::Addr base)
    {
        (void)core; (void)base;
    }

    /** mprotect: resize to @p newLen and set @p pd's perm to @p prot. */
    virtual void
    onVmaProtected(unsigned core, uat::PdId pd, sim::Addr base,
                   std::uint64_t newLen, uat::Perm prot,
                   const uat::Vte &vte)
    {
        (void)core; (void)pd; (void)base; (void)newLen; (void)prot;
        (void)vte;
    }

    /** pmove/pmoveBetween: @p src's permission moved to @p dst. */
    virtual void
    onPermMoved(unsigned core, sim::Addr base, uat::PdId src,
                uat::PdId dst, uat::Perm prot, const uat::Vte &vte)
    {
        (void)core; (void)base; (void)src; (void)dst; (void)prot;
        (void)vte;
    }

    /** pcopy: @p src's permission copied to @p dst. */
    virtual void
    onPermCopied(unsigned core, sim::Addr base, uat::PdId src,
                 uat::PdId dst, uat::Perm prot, const uat::Vte &vte)
    {
        (void)core; (void)base; (void)src; (void)dst; (void)prot;
        (void)vte;
    }

    virtual void
    onPdCreated(uat::PdId pd, uat::PdId creator)
    {
        (void)pd; (void)creator;
    }

    virtual void onPdDestroyed(uat::PdId pd) { (void)pd; }

    /** ccall/center switched @p core into @p pd. */
    virtual void
    onDomainEnter(unsigned core, uat::PdId pd)
    {
        (void)core; (void)pd;
    }

    /** cexit returned @p core to @p pd. */
    virtual void
    onDomainExit(unsigned core, uat::PdId pd)
    {
        (void)core; (void)pd;
    }
};

} // namespace jord::check

#endif // JORD_CHECK_HOOKS_HH
