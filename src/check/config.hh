/**
 * @file
 * JordSan configuration: which checker families run.
 */

#ifndef JORD_CHECK_CONFIG_HH
#define JORD_CHECK_CONFIG_HH

#include <string>

namespace jord::check {

/** Enabled checker families (jordsim --check=access,vlb,difftable). */
struct CheckConfig {
    bool access = false;    ///< access/lifecycle sanitizer
    bool vlb = false;       ///< VLB-coherence oracle
    bool difftable = false; ///< differential VMA-table checker

    bool any() const { return access || vlb || difftable; }

    static CheckConfig
    all()
    {
        return CheckConfig{true, true, true};
    }

    /**
     * Parse a `--check` value: "" enables every family; otherwise a
     * comma-separated subset of access,vlb,difftable. Returns false on
     * an unknown family name.
     */
    static bool parse(const std::string &spec, CheckConfig &out);
};

} // namespace jord::check

#endif // JORD_CHECK_CONFIG_HH
