#include "check/check.hh"

#include <algorithm>
#include <sstream>

#include "trace/metrics.hh"
#include "trace/trace.hh"
#include "uat/btree_table.hh"

namespace jord::check {

using sim::Addr;
using uat::Fault;
using uat::PdId;
using uat::Perm;
using uat::Vte;

bool
CheckConfig::parse(const std::string &spec, CheckConfig &out)
{
    if (spec.empty()) {
        out = CheckConfig::all();
        return true;
    }
    out = CheckConfig{};
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string family = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (family == "access") {
            out.access = true;
        } else if (family == "vlb") {
            out.vlb = true;
        } else if (family == "difftable") {
            out.difftable = true;
        } else {
            return false;
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out.any();
}

const char *
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::AccessAllowed: return "access-allowed";
      case ViolationKind::AccessDenied: return "access-denied";
      case ViolationKind::WrongFault: return "wrong-fault";
      case ViolationKind::IllegalTransfer: return "illegal-transfer";
      case ViolationKind::DoubleMap: return "double-map";
      case ViolationKind::UnknownVma: return "unknown-vma";
      case ViolationKind::DoublePdCreate: return "double-pd-create";
      case ViolationKind::DoublePdDestroy: return "double-pd-destroy";
      case ViolationKind::DeadPdUsed: return "dead-pd-used";
      case ViolationKind::PdPermLeak: return "pd-perm-leak";
      case ViolationKind::ArgBufLeak: return "argbuf-leak";
      case ViolationKind::ShadowResidue: return "shadow-residue";
      case ViolationKind::MissedShootdown: return "missed-shootdown";
      case ViolationKind::StaleTranslation: return "stale-translation";
      case ViolationKind::ForgedTranslation:
        return "forged-translation";
      case ViolationKind::RetiredVteFill: return "retired-vte-fill";
      case ViolationKind::FillPermMismatch:
        return "fill-perm-mismatch";
      case ViolationKind::TableDivergence: return "table-divergence";
    }
    return "unknown";
}

CheckFamily
violationFamily(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::MissedShootdown:
      case ViolationKind::StaleTranslation:
      case ViolationKind::ForgedTranslation:
      case ViolationKind::RetiredVteFill:
      case ViolationKind::FillPermMismatch:
        return CheckFamily::Vlb;
      case ViolationKind::TableDivergence:
        return CheckFamily::Difftable;
      default:
        return CheckFamily::Access;
    }
}

namespace {

std::string
permName(Perm perm)
{
    std::string out;
    out += perm.covers(Perm::r()) ? 'r' : '-';
    out += perm.covers(Perm(Perm::W)) ? 'w' : '-';
    out += perm.covers(Perm(Perm::X)) ? 'x' : '-';
    return out;
}

} // namespace

Checker::Checker(const CheckConfig &cfg, const uat::VaEncoding &encoding)
    : cfg_(cfg), enc_(encoding), pds_(uat::kMaxPdId + 1)
{
    // The root PD exists before any hook fires (PrivLib bootstrap
    // observes it as already-live).
    pds_[0].valid = true;
    if (cfg_.difftable) {
        mirrorPlain_ = std::make_unique<uat::PlainListVmaTable>(enc_);
        mirrorBtree_ = std::make_unique<uat::BTreeVmaTable>(enc_);
    }
}

Checker::~Checker() = default;

void
Checker::attachMetrics(trace::MetricsRegistry &registry,
                       const std::string &prefix)
{
    famCounter_[0] =
        &registry.counter(prefix + "check.violations.access");
    famCounter_[1] = &registry.counter(prefix + "check.violations.vlb");
    famCounter_[2] =
        &registry.counter(prefix + "check.violations.difftable");
    // Surface any violations recorded before attachment.
    for (unsigned fam = 0; fam < 3; ++fam)
        famCounter_[fam]->add(famCount_[fam]);
}

Checker::CoreState &
Checker::coreState(unsigned core)
{
    if (core >= cores_.size())
        cores_.resize(core + 1);
    return cores_[core];
}

std::uint64_t
Checker::totalViolations() const
{
    return famCount_[0] + famCount_[1] + famCount_[2];
}

std::optional<Perm>
Checker::shadowPermFor(const ShadowVma &vma, PdId pd)
{
    if (vma.global)
        return vma.globalPerm;
    auto it = vma.perms.find(pd);
    if (it == vma.perms.end())
        return std::nullopt;
    return it->second;
}

std::string
Checker::renderSpanStack(unsigned core) const
{
    if (!tracer_ || core >= cores_.size())
        return "";
    std::uint32_t span = cores_[core].spanId;
    const auto &spans = tracer_->spans();
    std::vector<std::string> names;
    while (span != 0 && span <= spans.size() && names.size() < 16) {
        const trace::SpanRecord &rec = spans[span - 1];
        names.push_back(tracer_->spanName(rec));
        span = rec.parent;
    }
    std::string out;
    for (auto it = names.rbegin(); it != names.rend(); ++it) {
        if (!out.empty())
            out += " > ";
        out += *it;
    }
    return out;
}

void
Checker::record(ViolationKind kind, unsigned core, Addr va, PdId pd,
                Addr vteAddr, std::string detail)
{
    unsigned fam = static_cast<unsigned>(violationFamily(kind));
    ++famCount_[fam];
    if (famCounter_[fam])
        famCounter_[fam]->add();
    if (log_.size() >= kMaxLogged)
        return;
    Violation v;
    v.kind = kind;
    v.detail = std::move(detail);
    v.va = va;
    if (va != 0) {
        if (auto decoded = enc_.decode(va))
            v.sizeClass = static_cast<int>(decoded->sizeClass);
    }
    v.pd = pd;
    v.vteAddr = vteAddr;
    v.core = core;
    if (core < cores_.size())
        v.reqId = cores_[core].reqId;
    v.tick = now();
    v.spanStack = renderSpanStack(core);
    log_.push_back(std::move(v));
}

void
Checker::report(std::ostream &os) const
{
    os << "JordSan: " << totalViolations() << " violation(s)"
       << " (access " << famCount_[0] << ", vlb " << famCount_[1]
       << ", difftable " << famCount_[2] << ")\n";
    if (log_.empty())
        return;
    const Violation &first = log_.front();
    os << "first violation: " << violationKindName(first.kind) << "\n"
       << "  detail:     " << first.detail << "\n"
       << "  va:         0x" << std::hex << first.va << std::dec;
    if (first.sizeClass >= 0)
        os << " (size class " << first.sizeClass << ", "
           << uat::VaEncoding::classSize(
                  static_cast<unsigned>(first.sizeClass))
           << " B chunk)";
    os << "\n"
       << "  pd:         " << first.pd << "\n"
       << "  vte:        0x" << std::hex << first.vteAddr << std::dec
       << "\n"
       << "  core:       " << first.core << "\n"
       << "  request:    " << first.reqId << "\n"
       << "  tick:       " << first.tick << "\n";
    if (!first.spanStack.empty())
        os << "  span stack: " << first.spanStack << "\n";
    for (std::size_t i = 1; i < log_.size(); ++i) {
        const Violation &v = log_[i];
        os << "  [" << i << "] " << violationKindName(v.kind) << " "
           << v.detail << "\n";
    }
    if (totalViolations() > log_.size())
        os << "  ... " << (totalViolations() - log_.size())
           << " more suppressed\n";
}

// --- Runtime lifecycle ---------------------------------------------------

void
Checker::setCoreContext(unsigned core, std::uint64_t reqId,
                        std::uint32_t spanId)
{
    CoreState &cs = coreState(core);
    cs.reqId = reqId;
    cs.spanId = spanId;
}

void
Checker::clearCoreContext(unsigned core)
{
    CoreState &cs = coreState(core);
    cs.reqId = 0;
    cs.spanId = 0;
}

void
Checker::argBufMapped(Addr va, std::uint64_t bytes, std::uint64_t reqId)
{
    argBufs_[va] = ArgBufState{bytes, reqId};
    auto it = vmas_.find(va);
    if (it != vmas_.end())
        it->second.reqId = reqId;
}

void
Checker::argBufFreed(Addr va)
{
    argBufs_.erase(va);
}

void
Checker::onRunEnd()
{
    if (!cfg_.access)
        return;
    for (const auto &[va, buf] : argBufs_) {
        std::ostringstream ss;
        ss << "ArgBuf 0x" << std::hex << va << std::dec << " ("
           << buf.bytes << " B, request " << buf.reqId
           << ") still mapped at end of run";
        record(ViolationKind::ArgBufLeak, 0, va, 0, 0, ss.str());
        if (!log_.empty() && log_.back().kind ==
                ViolationKind::ArgBufLeak && log_.back().va == va)
            log_.back().reqId = buf.reqId;
    }
    for (PdId pd = 1; pd <= uat::kMaxPdId; ++pd) {
        if (pds_[pd].valid) {
            std::ostringstream ss;
            ss << "PD " << pd << " (creator " << pds_[pd].creator
               << ") still live at end of run";
            record(ViolationKind::ShadowResidue, 0, 0, pd, 0,
                   ss.str());
        }
    }
    for (const auto &[base, vma] : vmas_) {
        for (const auto &[pd, perm] : vma.perms) {
            if (pd == 0)
                continue;
            std::ostringstream ss;
            ss << "VMA 0x" << std::hex << base << std::dec
               << " still grants " << permName(perm) << " to PD " << pd
               << " at end of run";
            record(ViolationKind::ShadowResidue, 0, base, pd,
                   vma.vteAddr, ss.str());
        }
    }
}

// --- Access family -------------------------------------------------------

Checker::ShadowVlbEntry *
Checker::findShadowVlb(unsigned core, bool isInstr, Addr vteAddr,
                       PdId pd)
{
    CoreState &cs = coreState(core);
    auto it = cs.vlb[isInstr ? 1 : 0].find(vteAddr);
    if (it == cs.vlb[isInstr ? 1 : 0].end())
        return nullptr;
    ShadowVlbEntry *global = nullptr;
    for (ShadowVlbEntry &sv : it->second) {
        if (sv.entry.pd == pd)
            return &sv;
        if (sv.entry.global)
            global = &sv;
    }
    return global;
}

void
Checker::checkHitAccess(unsigned core, Addr va, Perm need, PdId pd,
                        bool corePriv, bool isFetch, Addr vteAddr,
                        Fault actual)
{
    // The access translated through a cached VLB entry; mirror the
    // post-hit checks of UatSystem::resolve against the shadow copy of
    // that entry (the cached image may legitimately lag the table,
    // e.g. after a shootdown-free pcopy).
    ShadowVlbEntry *sv = findShadowVlb(core, isFetch, vteAddr, pd);
    if (!sv) {
        // onVlbUse already reported the forged translation.
        return;
    }
    const uat::VlbEntry &entry = sv->entry;
    bool in_bound = va - entry.base < entry.bound;
    bool priv_ok = !(entry.pbit && !corePriv &&
                     !need.covers(Perm(Perm::X)));
    bool perm_ok = entry.perm.covers(need);
    bool gate_ok = !isFetch || !entry.pbit || corePriv ||
                   gates_.count(va) != 0;
    bool expect = in_bound && priv_ok && perm_ok && gate_ok;
    bool allowed = actual == Fault::None;
    if (allowed == expect) {
        if (allowed)
            return;
        bool plausible =
            (!in_bound && actual == Fault::OutOfBound) ||
            (!priv_ok && actual == Fault::PrivilegedAccess) ||
            (!perm_ok && actual == Fault::NoPermission) ||
            (!gate_ok && actual == Fault::BadGate);
        if (!plausible) {
            std::ostringstream ss;
            ss << "VLB-hit " << (isFetch ? "fetch" : "access")
               << " denied with " << faultName(actual)
               << " but the shadow entry implies a different fault";
            record(ViolationKind::WrongFault, core, va, pd, vteAddr,
                   ss.str());
        }
        return;
    }
    std::ostringstream ss;
    ss << (isFetch ? "fetch" : "access") << " of 0x" << std::hex << va
       << std::dec << " (" << permName(need) << ") by PD " << pd
       << " on core " << core << " via cached translation: hardware "
       << (allowed ? "allowed" : "denied") << " it, shadow VLB entry ["
       << "base 0x" << std::hex << entry.base << std::dec << ", bound "
       << entry.bound << ", perm " << permName(entry.perm)
       << (entry.global ? ", global" : "")
       << (entry.pbit ? ", priv" : "") << "] says "
       << (expect ? "allow" : "deny");
    record(allowed ? ViolationKind::AccessAllowed
                   : ViolationKind::AccessDenied,
           core, va, pd, vteAddr, ss.str());
}

void
Checker::checkWalkAccess(unsigned core, Addr va, Perm need, PdId pd,
                         bool corePriv, bool isFetch, bool uatEnabled,
                         Fault actual)
{
    bool allowed = actual == Fault::None;

    if (!uatEnabled || !uat::VaEncoding::inUatRegion(va)) {
        if (allowed || actual != Fault::NotUatVa) {
            std::ostringstream ss;
            ss << (isFetch ? "fetch" : "access") << " of non-UAT VA 0x"
               << std::hex << va << std::dec << " resolved to "
               << faultName(actual) << " instead of not-uat-va";
            record(allowed ? ViolationKind::AccessAllowed
                           : ViolationKind::WrongFault,
                   core, va, pd, 0, ss.str());
        }
        return;
    }

    auto base = enc_.vmaBase(va);
    auto it = base ? vmas_.find(*base) : vmas_.end();
    if (it == vmas_.end()) {
        if (allowed) {
            std::ostringstream ss;
            ss << (isFetch ? "fetch" : "access") << " of 0x" << std::hex
               << va << std::dec << " by PD " << pd << " on core "
               << core << " allowed, but no shadow VMA covers it"
               << " (use-after-munmap or cross-PD leak)";
            record(ViolationKind::AccessAllowed, core, va, pd, 0,
                   ss.str());
        } else if (actual != Fault::NotMapped &&
                   actual != Fault::NotUatVa &&
                   actual != Fault::NoPermission) {
            std::ostringstream ss;
            ss << "unmapped VA 0x" << std::hex << va << std::dec
               << " resolved to " << faultName(actual);
            record(ViolationKind::WrongFault, core, va, pd, 0,
                   ss.str());
        }
        return;
    }

    const ShadowVma &vma = it->second;
    auto perm = shadowPermFor(vma, pd);
    bool in_bound = va - it->first < vma.bound;
    bool priv_ok = !(vma.priv && !corePriv &&
                     !need.covers(Perm(Perm::X)));
    bool perm_ok = perm && perm->covers(need);
    bool gate_ok = !isFetch || !vma.priv || corePriv ||
                   gates_.count(va) != 0;
    bool expect = in_bound && priv_ok && perm_ok && gate_ok;

    if (allowed == expect) {
        if (allowed)
            return;
        bool plausible =
            (!in_bound && actual == Fault::OutOfBound) ||
            (!priv_ok && actual == Fault::PrivilegedAccess) ||
            (!perm_ok && actual == Fault::NoPermission) ||
            (!gate_ok && actual == Fault::BadGate);
        if (!plausible) {
            std::ostringstream ss;
            ss << (isFetch ? "fetch" : "access") << " of 0x" << std::hex
               << va << std::dec << " denied with " << faultName(actual)
               << " but the shadow model implies a different fault";
            record(ViolationKind::WrongFault, core, va, pd,
                   vma.vteAddr, ss.str());
        }
        return;
    }

    std::ostringstream ss;
    ss << (isFetch ? "fetch" : "access") << " of 0x" << std::hex << va
       << std::dec << " (" << permName(need) << ") by PD " << pd
       << " on core " << core << ": hardware "
       << (allowed ? "allowed" : "denied") << " it, shadow VMA [bound "
       << vma.bound << ", " << (vma.global ? "global " : "")
       << (vma.priv ? "priv " : "") << "perm "
       << (perm ? permName(*perm) : std::string("none")) << "] says "
       << (expect ? "allow" : "deny") << " (" << faultName(actual)
       << ")";
    record(allowed ? ViolationKind::AccessAllowed
                   : ViolationKind::AccessDenied,
           core, va, pd, vma.vteAddr, ss.str());
}

void
Checker::onAccess(unsigned core, Addr va, Perm need, PdId pd,
                  bool corePriv, bool isFetch, bool uatEnabled,
                  Fault actual)
{
    ++epoch_;
    CoreState &cs = coreState(core);
    bool hit = cs.pendingHit && cs.pendingHitInstr == isFetch;
    Addr hitVte = cs.pendingHitVte;
    cs.pendingHit = false;
    if (!cfg_.access)
        return;
    if (hit)
        checkHitAccess(core, va, need, pd, corePriv, isFetch, hitVte,
                       actual);
    else
        checkWalkAccess(core, va, need, pd, corePriv, isFetch,
                        uatEnabled, actual);
}

// --- VLB-coherence oracle ------------------------------------------------

void
Checker::onVlbFill(unsigned core, bool isInstr,
                   const uat::VlbEntry &entry)
{
    ++epoch_;
    CoreState &cs = coreState(core);
    cs.pendingHit = false;

    auto vb = vteToBase_.find(entry.vteAddr);
    const ShadowVma *vma = nullptr;
    if (vb != vteToBase_.end()) {
        auto it = vmas_.find(vb->second);
        if (it != vmas_.end())
            vma = &it->second;
    }
    if (cfg_.vlb && !vma) {
        std::ostringstream ss;
        ss << (isInstr ? "I" : "D") << "-VLB fill on core " << core
           << " installs VTE 0x" << std::hex << entry.vteAddr
           << std::dec << " (base 0x" << std::hex << entry.base
           << std::dec << ") whose VMA is retired in the shadow model";
        record(ViolationKind::RetiredVteFill, core, entry.base,
               entry.pd, entry.vteAddr, ss.str());
    }
    if (cfg_.vlb && vma) {
        auto perm = shadowPermFor(*vma, entry.pd);
        if (!perm || !(*perm == entry.perm)) {
            std::ostringstream ss;
            ss << (isInstr ? "I" : "D") << "-VLB fill on core " << core
               << " caches perm " << permName(entry.perm) << " for PD "
               << entry.pd << " on VMA 0x" << std::hex << entry.base
               << std::dec << " but the shadow table grants "
               << (perm ? permName(*perm) : std::string("none"));
            record(ViolationKind::FillPermMismatch, core, entry.base,
                   entry.pd, entry.vteAddr, ss.str());
        }
    }

    auto &vec = cs.vlb[isInstr ? 1 : 0][entry.vteAddr];
    ShadowVlbEntry sv;
    sv.entry = entry;
    sv.fillEpoch = epoch_;
    sv.fillTick = now();
    // Mirror the (fixed) in-place replace rule of Vlb::insert: a new
    // fill supersedes any cached entry for the same VTE that the same
    // lookup could return.
    auto same = std::find_if(
        vec.begin(), vec.end(), [&](const ShadowVlbEntry &old) {
            return old.entry.global || entry.global ||
                   old.entry.pd == entry.pd;
        });
    if (same != vec.end())
        *same = sv;
    else
        vec.push_back(sv);
}

void
Checker::onVlbUse(unsigned core, bool isInstr, Addr vteAddr, PdId pd)
{
    ++epoch_;
    CoreState &cs = coreState(core);
    cs.pendingHit = true;
    cs.pendingHitInstr = isInstr;
    cs.pendingHitVte = vteAddr;
    if (!cfg_.vlb)
        return;
    ShadowVlbEntry *sv = findShadowVlb(core, isInstr, vteAddr, pd);
    if (!sv) {
        std::ostringstream ss;
        ss << (isInstr ? "I" : "D") << "-VLB hit on core " << core
           << " for VTE 0x" << std::hex << vteAddr << std::dec
           << " under PD " << pd
           << " with no legitimate fill on record";
        record(ViolationKind::ForgedTranslation, core, 0, pd, vteAddr,
               ss.str());
        return;
    }
    if (sv->stale) {
        std::ostringstream ss;
        ss << (isInstr ? "I" : "D") << "-VLB hit on core " << core
           << " translates through a stale entry for VTE 0x"
           << std::hex << vteAddr << std::dec << " (base 0x"
           << std::hex << sv->entry.base << std::dec
           << ", filled at tick " << sv->fillTick
           << ") after its shootdown missed this core";
        record(ViolationKind::StaleTranslation, core, sv->entry.base,
               pd, vteAddr, ss.str());
    }
}

void
Checker::onShootdown(Addr vteAddr, unsigned writerCore,
                     const std::vector<unsigned> &targets)
{
    ++epoch_;
    coreState(writerCore); // the writer is always known
    for (unsigned core = 0; core < cores_.size(); ++core) {
        CoreState &cs = cores_[core];
        bool targeted = std::find(targets.begin(), targets.end(),
                                  core) != targets.end();
        for (auto &map : cs.vlb) {
            auto it = map.find(vteAddr);
            if (it == map.end())
                continue;
            if (targeted) {
                map.erase(it);
                continue;
            }
            // Every T-bit VTE write — local refreshes included —
            // reports its true fan-out set (the VTD is consulted even
            // on dirty hits), so a fresh holder outside the target set
            // is always a missed shootdown and is reported eagerly.
            if (cfg_.vlb) {
                bool fresh = std::any_of(
                    it->second.begin(), it->second.end(),
                    [](const ShadowVlbEntry &sv) { return !sv.stale; });
                if (fresh) {
                    std::ostringstream ss;
                    ss << "shootdown of VTE 0x" << std::hex << vteAddr
                       << std::dec << " by core " << writerCore
                       << " reached " << targets.size()
                       << " core(s) but missed core " << core
                       << ", which holds a live shadow copy";
                    record(ViolationKind::MissedShootdown, core, 0, 0,
                           vteAddr, ss.str());
                }
            }
            for (ShadowVlbEntry &sv : it->second)
                sv.stale = true;
        }
    }
}

void
Checker::onBackInvalidate(Addr vteAddr,
                          const std::vector<unsigned> &targets)
{
    // Capacity housekeeping, not a semantic change: drop the targeted
    // cores' shadow copies and leave everyone else's coherent.
    ++epoch_;
    for (unsigned core : targets) {
        CoreState &cs = coreState(core);
        for (auto &map : cs.vlb)
            map.erase(vteAddr);
        if (cs.pendingHitVte == vteAddr)
            cs.pendingHit = false;
    }
}

void
Checker::onGateAdded(Addr va)
{
    ++epoch_;
    gates_[va] = epoch_;
}

// --- PrivLib mutations ---------------------------------------------------

void
Checker::onVmaMapped(unsigned core, PdId pd, Addr base,
                     std::uint64_t len, Perm prot, Addr vteAddr,
                     const Vte &vte)
{
    ++epoch_;
    if (cfg_.access && vmas_.count(base)) {
        std::ostringstream ss;
        ss << "mmap returned base 0x" << std::hex << base << std::dec
           << " which the shadow model already has live";
        record(ViolationKind::DoubleMap, core, base, pd, vteAddr,
               ss.str());
    }
    ShadowVma vma;
    vma.bound = len;
    vma.priv = vte.privileged();
    vma.global = vte.global();
    vma.globalPerm = vte.globalPerm();
    if (!vma.global)
        vma.perms[pd] = prot;
    vma.vteAddr = vteAddr;
    vma.reqId = core < cores_.size() ? cores_[core].reqId : 0;
    vmas_[base] = std::move(vma);
    vteToBase_[vteAddr] = base;
    if (cfg_.difftable)
        difftableApply(base, vte, true);
}

void
Checker::onVmaUnmapped(unsigned core, Addr base)
{
    ++epoch_;
    auto it = vmas_.find(base);
    if (it == vmas_.end()) {
        if (cfg_.access) {
            std::ostringstream ss;
            ss << "munmap of base 0x" << std::hex << base << std::dec
               << " which the shadow model does not have live";
            record(ViolationKind::UnknownVma, core, base, 0, 0,
                   ss.str());
        }
        return;
    }
    vteToBase_.erase(it->second.vteAddr);
    vmas_.erase(it);
    if (cfg_.difftable)
        difftableRemove(base);
}

void
Checker::onVmaProtected(unsigned core, PdId pd, Addr base,
                        std::uint64_t newLen, Perm prot,
                        const Vte &vte)
{
    ++epoch_;
    auto it = vmas_.find(base);
    if (it == vmas_.end()) {
        if (cfg_.access) {
            std::ostringstream ss;
            ss << "mprotect of base 0x" << std::hex << base << std::dec
               << " which the shadow model does not have live";
            record(ViolationKind::UnknownVma, core, base, pd, 0,
                   ss.str());
        }
        return;
    }
    ShadowVma &vma = it->second;
    vma.bound = newLen;
    if (vma.global)
        vma.globalPerm = prot;
    else if (vma.perms.count(pd))
        vma.perms[pd] = prot;
    if (cfg_.difftable)
        difftableApply(base, vte, false);
}

void
Checker::onPermMoved(unsigned core, Addr base, PdId src, PdId dst,
                     Perm prot, const Vte &vte)
{
    ++epoch_;
    auto it = vmas_.find(base);
    if (it == vmas_.end()) {
        if (cfg_.access) {
            std::ostringstream ss;
            ss << "pmove on base 0x" << std::hex << base << std::dec
               << " which the shadow model does not have live";
            record(ViolationKind::UnknownVma, core, base, src, 0,
                   ss.str());
        }
        return;
    }
    ShadowVma &vma = it->second;
    if (cfg_.access) {
        auto held = shadowPermFor(vma, src);
        if (!held || !held->covers(prot)) {
            std::ostringstream ss;
            ss << "pmove of " << permName(prot) << " on 0x" << std::hex
               << base << std::dec << " from PD " << src << " to PD "
               << dst << ", but the shadow model says PD " << src
               << " holds "
               << (held ? permName(*held) : std::string("none"));
            record(ViolationKind::IllegalTransfer, core, base, src,
                   vma.vteAddr, ss.str());
        }
    }
    if (!vma.global) {
        vma.perms.erase(src);
        vma.perms[dst] = prot;
    }
    if (cfg_.difftable)
        difftableApply(base, vte, false);
}

void
Checker::onPermCopied(unsigned core, Addr base, PdId src, PdId dst,
                      Perm prot, const Vte &vte)
{
    ++epoch_;
    auto it = vmas_.find(base);
    if (it == vmas_.end()) {
        if (cfg_.access) {
            std::ostringstream ss;
            ss << "pcopy on base 0x" << std::hex << base << std::dec
               << " which the shadow model does not have live";
            record(ViolationKind::UnknownVma, core, base, src, 0,
                   ss.str());
        }
        return;
    }
    ShadowVma &vma = it->second;
    if (cfg_.access) {
        auto held = shadowPermFor(vma, src);
        if (!held || !held->covers(prot)) {
            std::ostringstream ss;
            ss << "pcopy of " << permName(prot) << " on 0x" << std::hex
               << base << std::dec << " from PD " << src << " to PD "
               << dst << ", but the shadow model says PD " << src
               << " holds "
               << (held ? permName(*held) : std::string("none"));
            record(ViolationKind::IllegalTransfer, core, base, src,
                   vma.vteAddr, ss.str());
        }
    }
    if (!vma.global)
        vma.perms[dst] = prot;
    if (cfg_.difftable)
        difftableApply(base, vte, false);
}

void
Checker::onPdCreated(PdId pd, PdId creator)
{
    ++epoch_;
    if (cfg_.access && pds_[pd].valid) {
        std::ostringstream ss;
        ss << "cget returned PD " << pd
           << " which the shadow model already has live";
        record(ViolationKind::DoublePdCreate, 0, 0, pd, 0, ss.str());
    }
    pds_[pd].valid = true;
    pds_[pd].creator = creator;
}

void
Checker::onPdDestroyed(PdId pd)
{
    ++epoch_;
    if (cfg_.access && !pds_[pd].valid) {
        std::ostringstream ss;
        ss << "cput destroyed PD " << pd
           << " which the shadow model already has dead (double cput)";
        record(ViolationKind::DoublePdDestroy, 0, 0, pd, 0, ss.str());
        return;
    }
    if (cfg_.access) {
        for (const auto &[base, vma] : vmas_) {
            auto held = vma.perms.find(pd);
            if (held == vma.perms.end())
                continue;
            std::ostringstream ss;
            ss << "cput destroyed PD " << pd
               << " while the shadow model still sees its "
               << permName(held->second) << " permission on VMA 0x"
               << std::hex << base << std::dec;
            record(ViolationKind::PdPermLeak, 0, base, pd, vma.vteAddr,
                   ss.str());
        }
    }
    pds_[pd].valid = false;
}

void
Checker::onDomainEnter(unsigned core, PdId pd)
{
    ++epoch_;
    if (cfg_.access && !pds_[pd].valid) {
        std::ostringstream ss;
        ss << "core " << core << " switched into PD " << pd
           << " which the shadow model has dead (use-after-cput)";
        record(ViolationKind::DeadPdUsed, core, 0, pd, 0, ss.str());
    }
}

void
Checker::onDomainExit(unsigned core, PdId pd)
{
    ++epoch_;
    (void)core;
    (void)pd;
}

// --- Differential table checker ------------------------------------------

void
Checker::difftableApply(Addr base, const Vte &vte, bool insert)
{
    if (insert) {
        mirrorPlain_->noteInsert(base);
        mirrorBtree_->noteInsert(base);
    }
    Vte *plain = mirrorPlain_->vteFor(base);
    Vte *btree = mirrorBtree_->vteFor(base);
    if (plain)
        *plain = vte;
    if (btree)
        *btree = vte;
    difftableDiff(base);
    if (vte.bound > 1)
        difftableDiff(base + vte.bound - 1);
}

void
Checker::difftableRemove(Addr base)
{
    if (Vte *plain = mirrorPlain_->vteFor(base))
        *plain = Vte{};
    if (Vte *btree = mirrorBtree_->vteFor(base))
        *btree = Vte{};
    mirrorPlain_->noteRemove(base);
    mirrorBtree_->noteRemove(base);
    difftableDiff(base);
}

void
Checker::difftableProbe(Addr va)
{
    if (cfg_.difftable)
        difftableDiff(va);
}

void
Checker::difftableDiff(Addr va)
{
    uat::TableWalk plain = mirrorPlain_->walk(va);
    uat::TableWalk btree = mirrorBtree_->walk(va);
    bool plain_live = plain.vte && plain.vte->valid();
    bool btree_live = btree.vte && btree.vte->valid();
    std::string why;
    if (plain_live != btree_live) {
        why = plain_live ? "B-tree lost the mapping"
                         : "B-tree retains a removed mapping";
    } else if (plain_live) {
        if (plain.vmaBase != btree.vmaBase)
            why = "walks disagree on the VMA base";
        else if (plain.vte->bound != btree.vte->bound)
            why = "walks disagree on the bound";
        else if (plain.vte->offsAttr != btree.vte->offsAttr)
            why = "walks disagree on offs/attr";
        else if (!std::equal(plain.vte->sub.begin(),
                             plain.vte->sub.end(),
                             btree.vte->sub.begin(),
                             [](uat::SubEntry a, uat::SubEntry b) {
                                 return a.raw == b.raw;
                             }))
            why = "walks disagree on the sharer sub-array";
    }
    if (why.empty())
        return;
    std::ostringstream ss;
    ss << "plain-list and B-tree mirrors diverge at 0x" << std::hex
       << va << std::dec << ": " << why;
    record(ViolationKind::TableDivergence, 0, va, 0, plain.vteAddr,
           ss.str());
}

} // namespace jord::check
