/**
 * @file
 * JordSan: an isolation sanitizer for the simulated Jord stack.
 *
 * The Checker maintains an independent shadow model of the isolation
 * state — a shadow VMA table keyed by VA range, the PD ownership map,
 * ArgBuf lifecycle states, and per-core shadow VLB copies stamped with
 * the simulated-time instant each entry was filled — and cross-checks
 * the real system against it at every mutation and access. Three
 * checker families (CheckConfig):
 *
 *  - access: every load/store/fetch is validated against the shadow
 *    permissions for the current PD, catching cross-PD leaks,
 *    use-after-munmap/pmove, ArgBuf use-after-handoff, and P-bit
 *    touches outside uatg entry; PrivLib transfers are validated
 *    against the permissions the source actually holds.
 *  - vlb: a coherence oracle — on every permission downgrade/unmap it
 *    computes which cores hold stale shadow entries and asserts the
 *    VTD shootdown reached exactly that set before any subsequent
 *    access translates through a stale entry (happens-before over
 *    fill/shootdown/use epochs, per core).
 *  - difftable: replays every VMA op into both a plain-list and a
 *    B-tree mirror table and diffs lookup results, so Jord_BT cannot
 *    silently diverge from the paper's design.
 *
 * The checker is pure observer: it never mutates the observed system
 * and never charges latency, so a run with checking enabled is
 * timing-identical to one without.
 */

#ifndef JORD_CHECK_CHECK_HH
#define JORD_CHECK_CHECK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/config.hh"
#include "check/hooks.hh"
#include "uat/size_class.hh"
#include "uat/vma_table.hh"

namespace jord::trace {
class Counter;
class MetricsRegistry;
class Tracer;
} // namespace jord::trace

namespace jord::check {

/** What went wrong. */
enum class ViolationKind {
    // access/lifecycle family
    AccessAllowed,   ///< hardware allowed what the shadow model forbids
    AccessDenied,    ///< hardware denied what the shadow model allows
    WrongFault,      ///< denied, but with an implausible fault kind
    IllegalTransfer, ///< pmove/pcopy of a permission src never held
    DoubleMap,       ///< mmap produced an already-live base address
    UnknownVma,      ///< mutation of a base the shadow never saw
    DoublePdCreate,  ///< cget returned a PD id that is already live
    DoublePdDestroy, ///< cput destroyed an already-dead PD
    DeadPdUsed,      ///< ccall/center into a destroyed PD
    PdPermLeak,      ///< PD destroyed while shadow still sees perms
    ArgBufLeak,      ///< ArgBuf still mapped at end of run
    ShadowResidue,   ///< non-root shadow state survives the run
    // vlb family
    MissedShootdown,  ///< a core holding the entry was not targeted
    StaleTranslation, ///< an access translated through a stale entry
    ForgedTranslation,///< a VLB hit with no legitimate fill on record
    RetiredVteFill,   ///< a fill inserted an entry for a dead VMA
    FillPermMismatch, ///< fill's cached perm disagrees with the shadow
    // difftable family
    TableDivergence, ///< plain-list vs B-tree lookup disagreement
};

/** Which family a violation counts against. */
enum class CheckFamily { Access, Vlb, Difftable };

const char *violationKindName(ViolationKind kind);
CheckFamily violationFamily(ViolationKind kind);

/** One recorded violation with its diagnostic context. */
struct Violation {
    ViolationKind kind;
    std::string detail;    ///< rendered one-line description
    sim::Addr va = 0;      ///< faulting/affected VA (0 if n/a)
    int sizeClass = -1;    ///< size class of va (-1 if n/a)
    uat::PdId pd = 0;
    sim::Addr vteAddr = 0;
    unsigned core = 0;
    std::uint64_t reqId = 0; ///< owning request (0 if none)
    sim::Tick tick = 0;
    std::string spanStack; ///< trace span stack at detection time
};

/**
 * The JordSan checker. Implements the CheckHooks event interface and
 * adds the runtime-facing lifecycle calls (ArgBufs, per-core request
 * context, end-of-run quiescence).
 */
class Checker final : public CheckHooks
{
  public:
    explicit Checker(const CheckConfig &cfg,
                     const uat::VaEncoding &encoding = uat::VaEncoding());
    ~Checker() override;

    Checker(const Checker &) = delete;
    Checker &operator=(const Checker &) = delete;

    const CheckConfig &config() const { return cfg_; }

    // --- Wiring ----------------------------------------------------

    /** Bind the simulated clock for fill/violation timestamps. */
    void setClock(std::function<sim::Tick()> clock)
    {
        clock_ = std::move(clock);
    }

    /** Attach a tracer so violations capture the live span stack. */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /** Register check.violations.{access,vlb,difftable} counters. */
    void attachMetrics(trace::MetricsRegistry &registry,
                       const std::string &prefix = "");

    // --- Runtime lifecycle (called by the Worker / tests) ----------

    /** Current request/span executing on @p core (diagnostics). */
    void setCoreContext(unsigned core, std::uint64_t reqId,
                        std::uint32_t spanId);
    void clearCoreContext(unsigned core);

    /** An ArgBuf VMA entered / left the runtime's custody. */
    void argBufMapped(sim::Addr va, std::uint64_t bytes,
                      std::uint64_t reqId);
    void argBufFreed(sim::Addr va);

    /** End-of-run quiescence check: leaked ArgBufs, live non-root
     * PDs, and shadow VMAs still granting non-root permissions. */
    void onRunEnd();

    // --- Results ---------------------------------------------------

    std::uint64_t totalViolations() const;
    std::uint64_t violations(CheckFamily family) const
    {
        return famCount_[static_cast<unsigned>(family)];
    }

    /** The first violations in detection order (capped). */
    const std::vector<Violation> &log() const { return log_; }

    /** Human-readable report; detailed dump for the first violation. */
    void report(std::ostream &os) const;

    // --- Test support ----------------------------------------------

    /** Run a differential table probe at @p va right now. */
    void difftableProbe(sim::Addr va);

    /** The difftable mirrors (null unless the family is enabled). */
    uat::VmaTableBase *mirrorPlain() { return mirrorPlain_.get(); }
    uat::VmaTableBase *mirrorBtree() { return mirrorBtree_.get(); }

    // --- CheckHooks ------------------------------------------------

    void onAccess(unsigned core, sim::Addr va, uat::Perm need,
                  uat::PdId pd, bool corePriv, bool isFetch,
                  bool uatEnabled, uat::Fault actual) override;
    void onVlbFill(unsigned core, bool isInstr,
                   const uat::VlbEntry &entry) override;
    void onVlbUse(unsigned core, bool isInstr, sim::Addr vteAddr,
                  uat::PdId pd) override;
    void onShootdown(sim::Addr vteAddr, unsigned writerCore,
                     const std::vector<unsigned> &targets) override;
    void onBackInvalidate(sim::Addr vteAddr,
                          const std::vector<unsigned> &targets) override;
    void onGateAdded(sim::Addr va) override;
    void onVmaMapped(unsigned core, uat::PdId pd, sim::Addr base,
                     std::uint64_t len, uat::Perm prot,
                     sim::Addr vteAddr, const uat::Vte &vte) override;
    void onVmaUnmapped(unsigned core, sim::Addr base) override;
    void onVmaProtected(unsigned core, uat::PdId pd, sim::Addr base,
                        std::uint64_t newLen, uat::Perm prot,
                        const uat::Vte &vte) override;
    void onPermMoved(unsigned core, sim::Addr base, uat::PdId src,
                     uat::PdId dst, uat::Perm prot,
                     const uat::Vte &vte) override;
    void onPermCopied(unsigned core, sim::Addr base, uat::PdId src,
                      uat::PdId dst, uat::Perm prot,
                      const uat::Vte &vte) override;
    void onPdCreated(uat::PdId pd, uat::PdId creator) override;
    void onPdDestroyed(uat::PdId pd) override;
    void onDomainEnter(unsigned core, uat::PdId pd) override;
    void onDomainExit(unsigned core, uat::PdId pd) override;

  private:
    /** Shadow image of one live VMA. */
    struct ShadowVma {
        std::uint64_t bound = 0;
        bool priv = false;
        bool global = false;
        uat::Perm globalPerm;
        std::map<uat::PdId, uat::Perm> perms;
        sim::Addr vteAddr = 0;
        std::uint64_t reqId = 0; ///< request mapping it (diagnostics)
    };

    /** Shadow copy of one filled VLB entry. */
    struct ShadowVlbEntry {
        uat::VlbEntry entry;
        std::uint64_t fillEpoch = 0;
        sim::Tick fillTick = 0;
        bool stale = false;
    };

    struct ShadowPd {
        bool valid = false;
        uat::PdId creator = 0;
    };

    struct CoreState {
        /** Per-VTE shadow VLB copies; [0] = data, [1] = instr. */
        std::unordered_map<sim::Addr, std::vector<ShadowVlbEntry>>
            vlb[2];
        /** Set by onVlbUse, consumed by the following onAccess. */
        bool pendingHit = false;
        bool pendingHitInstr = false;
        sim::Addr pendingHitVte = 0;
        /** Runtime context for diagnostics. */
        std::uint64_t reqId = 0;
        std::uint32_t spanId = 0;
    };

    const CheckConfig cfg_;
    uat::VaEncoding enc_;
    std::uint64_t epoch_ = 0;

    std::map<sim::Addr, ShadowVma> vmas_;
    std::unordered_map<sim::Addr, sim::Addr> vteToBase_;
    std::vector<ShadowPd> pds_;
    std::unordered_map<sim::Addr, std::uint64_t> gates_;
    std::vector<CoreState> cores_;

    struct ArgBufState {
        std::uint64_t bytes = 0;
        std::uint64_t reqId = 0;
    };
    std::map<sim::Addr, ArgBufState> argBufs_;

    /** Difftable mirrors (allocated only when the family is on). */
    std::unique_ptr<uat::VmaTableBase> mirrorPlain_;
    std::unique_ptr<uat::VmaTableBase> mirrorBtree_;

    std::function<sim::Tick()> clock_;
    trace::Tracer *tracer_ = nullptr;
    trace::Counter *famCounter_[3] = {nullptr, nullptr, nullptr};

    std::uint64_t famCount_[3] = {0, 0, 0};
    std::vector<Violation> log_;
    static constexpr std::size_t kMaxLogged = 32;

    CoreState &coreState(unsigned core);

    sim::Tick now() const { return clock_ ? clock_() : 0; }

    /** Effective shadow permission of @p pd on @p vma. */
    static std::optional<uat::Perm> shadowPermFor(const ShadowVma &vma,
                                                  uat::PdId pd);

    /** Find a shadow VLB entry usable for (va, pd); exact-PD entries
     * win over global ones, mirroring Vlb::lookup. */
    ShadowVlbEntry *findShadowVlb(unsigned core, bool isInstr,
                                  sim::Addr vteAddr, uat::PdId pd);

    void checkHitAccess(unsigned core, sim::Addr va, uat::Perm need,
                        uat::PdId pd, bool corePriv, bool isFetch,
                        sim::Addr vteAddr, uat::Fault actual);
    void checkWalkAccess(unsigned core, sim::Addr va, uat::Perm need,
                         uat::PdId pd, bool corePriv, bool isFetch,
                         bool uatEnabled, uat::Fault actual);

    /** Replay a VTE image into both mirrors and diff lookups. */
    void difftableApply(sim::Addr base, const uat::Vte &vte,
                        bool insert);
    void difftableRemove(sim::Addr base);
    void difftableDiff(sim::Addr va);

    void record(ViolationKind kind, unsigned core, sim::Addr va,
                uat::PdId pd, sim::Addr vteAddr, std::string detail);

    std::string renderSpanStack(unsigned core) const;
};

} // namespace jord::check

#endif // JORD_CHECK_CHECK_HH
