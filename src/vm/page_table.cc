#include "vm/page_table.hh"

#include "sim/logging.hh"

namespace jord::vm {

using sim::Addr;

namespace {
/** Synthetic physical region where page-table nodes live. */
constexpr Addr kNodePaBase = 0x4000'0000'0000ull;
} // namespace

PageTable::PageTable() : nextNodePa_(kNodePaBase)
{
    root_ = std::make_unique<Node>();
    root_->nodePa = nextNodePa_;
    nextNodePa_ += kPageBytes;
    numNodes_ = 1;
}

PageTable::~PageTable() = default;

unsigned
PageTable::levelIndex(Addr va, unsigned level)
{
    // level 0 is the root; leaves sit at level kNumLevels - 1.
    unsigned shift =
        kPageShift + kLevelBits * (kNumLevels - 1 - level);
    return static_cast<unsigned>((va >> shift) & (kEntriesPerNode - 1));
}

PageTable::Node *
PageTable::ensureChild(Entry &entry)
{
    if (!entry.child) {
        entry.child = std::make_unique<Node>();
        entry.child->nodePa = nextNodePa_;
        nextNodePa_ += kPageBytes;
        ++numNodes_;
        entry.valid = true;
        entry.leaf = false;
    }
    return entry.child.get();
}

bool
PageTable::mapPage(Addr va, Addr pa, PagePerms perms)
{
    Node *node = root_.get();
    for (unsigned level = 0; level + 1 < kNumLevels; ++level) {
        Entry &entry = node->entries[levelIndex(va, level)];
        if (entry.valid && entry.leaf)
            return false; // huge-page conflict (we only map 4K pages)
        node = ensureChild(entry);
    }
    Entry &leaf = node->entries[levelIndex(va, kNumLevels - 1)];
    if (leaf.valid)
        return false;
    leaf.valid = true;
    leaf.leaf = true;
    leaf.pa = pa;
    leaf.perms = perms;
    ++numMapped_;
    return true;
}

bool
PageTable::map(Addr va, Addr pa, std::uint64_t len, PagePerms perms)
{
    if (va != pageAlignDown(va) || pa != pageAlignDown(pa))
        return false;
    std::uint64_t pages = pageAlignUp(len) / kPageBytes;
    // First verify no page is already mapped so the operation is atomic.
    for (std::uint64_t i = 0; i < pages; ++i) {
        if (findLeaf(va + i * kPageBytes) != nullptr)
            return false;
    }
    for (std::uint64_t i = 0; i < pages; ++i) {
        bool ok = mapPage(va + i * kPageBytes, pa + i * kPageBytes, perms);
        if (!ok)
            sim::panic("mapPage failed after pre-check");
    }
    return true;
}

PageTable::Entry *
PageTable::findLeaf(Addr va) const
{
    const Node *node = root_.get();
    for (unsigned level = 0; level + 1 < kNumLevels; ++level) {
        const Entry &entry = node->entries[levelIndex(va, level)];
        if (!entry.valid || !entry.child)
            return nullptr;
        node = entry.child.get();
    }
    const Entry &leaf = node->entries[levelIndex(va, kNumLevels - 1)];
    if (!leaf.valid || !leaf.leaf)
        return nullptr;
    return const_cast<Entry *>(&leaf);
}

std::uint64_t
PageTable::unmap(Addr va, std::uint64_t len)
{
    va = pageAlignDown(va);
    std::uint64_t pages = pageAlignUp(len) / kPageBytes;
    std::uint64_t removed = 0;
    for (std::uint64_t i = 0; i < pages; ++i) {
        Entry *leaf = findLeaf(va + i * kPageBytes);
        if (!leaf)
            continue;
        leaf->valid = false;
        leaf->leaf = false;
        leaf->pa = 0;
        leaf->perms = PagePerms{};
        --numMapped_;
        ++removed;
    }
    return removed;
}

std::uint64_t
PageTable::protect(Addr va, std::uint64_t len, PagePerms perms)
{
    va = pageAlignDown(va);
    std::uint64_t pages = pageAlignUp(len) / kPageBytes;
    std::uint64_t updated = 0;
    for (std::uint64_t i = 0; i < pages; ++i) {
        Entry *leaf = findLeaf(va + i * kPageBytes);
        if (!leaf)
            continue;
        leaf->perms = perms;
        ++updated;
    }
    return updated;
}

std::optional<Translation>
PageTable::translate(Addr va) const
{
    const Entry *leaf = findLeaf(pageAlignDown(va));
    if (!leaf)
        return std::nullopt;
    return Translation{leaf->pa + (va & (kPageBytes - 1)), leaf->perms};
}

std::vector<Addr>
PageTable::walkPath(Addr va) const
{
    std::vector<Addr> path;
    path.reserve(kNumLevels);
    const Node *node = root_.get();
    for (unsigned level = 0; level < kNumLevels; ++level) {
        unsigned idx = levelIndex(va, level);
        // Each PTE is 8 bytes inside the node's synthetic page.
        path.push_back(node->nodePa + idx * 8);
        const Entry &entry = node->entries[idx];
        if (!entry.valid)
            break;
        if (entry.leaf || level + 1 == kNumLevels)
            break;
        node = entry.child.get();
    }
    return path;
}

} // namespace jord::vm
