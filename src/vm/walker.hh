/**
 * @file
 * Timed hardware page-table walker for the conventional TLB hierarchy.
 *
 * On an L1 TLB miss the walker first probes the L2 TLB, then walks the
 * radix page table. Each page-table-node access is charged to the
 * coherence engine, so hot upper-level PTEs hit in caches and cold walks
 * pay DRAM latency — the behaviour that makes conventional VM operations
 * so much slower than Jord's plain-list lookups.
 */

#ifndef JORD_VM_WALKER_HH
#define JORD_VM_WALKER_HH

#include <memory>
#include <optional>
#include <vector>

#include "mem/coherence.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace jord::vm {

/** Outcome of a timed translation attempt. */
struct WalkResult {
    /** Total latency including TLB probes. */
    sim::Cycles latency = 0;
    /** Filled translation; nullopt means page fault. */
    std::optional<Translation> translation;
    bool l1TlbHit = false;
    bool l2TlbHit = false;
    /** Page-table levels touched (0 when served by a TLB). */
    unsigned levelsWalked = 0;
};

/**
 * Per-core MMU: L1 TLB + shared-model L2 TLB + timed walker.
 */
class Mmu
{
  public:
    /**
     * @param cfg Machine configuration (TLB sizes and latencies).
     * @param coherence Engine to charge PTE accesses to.
     * @param table The process page table.
     * @param core The core this MMU belongs to.
     */
    Mmu(const sim::MachineConfig &cfg, mem::CoherenceEngine &coherence,
        PageTable &table, unsigned core);

    /** Timed translation of a data access. */
    WalkResult translate(sim::Addr va);

    /** Invalidate one page from both TLB levels. */
    void invalidatePage(sim::Addr va);

    /** Invalidate everything (full shootdown). */
    void invalidateAll();

    Tlb &l1Tlb() { return l1_; }
    Tlb &l2Tlb() { return l2_; }

  private:
    const sim::MachineConfig &cfg_;
    mem::CoherenceEngine &coherence_;
    PageTable &table_;
    unsigned core_;
    Tlb l1_;
    Tlb l2_;
};

} // namespace jord::vm

#endif // JORD_VM_WALKER_HH
