#include "vm/posix_vm.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace jord::vm {

using sim::Addr;
using sim::Cycles;

namespace {
constexpr Addr kMmapVaBase = 0x7f00'0000'0000ull;
constexpr Addr kMmapPaBase = 0x0100'0000'0000ull;
} // namespace

PosixVm::PosixVm(const sim::MachineConfig &cfg,
                 mem::CoherenceEngine &coherence)
    : cfg_(cfg),
      coherence_(coherence),
      nextVa_(kMmapVaBase),
      nextPa_(kMmapPaBase)
{
    mmus_.reserve(cfg.numCores);
    for (unsigned core = 0; core < cfg.numCores; ++core)
        mmus_.push_back(
            std::make_unique<Mmu>(cfg, coherence, table_, core));
}

Cycles
PosixVm::shootdown(unsigned initiator, Addr va, std::uint64_t len,
                   unsigned &ipis)
{
    // Linux-style: flush locally, then IPI every other core and spin until
    // all have acknowledged. Remote handlers run concurrently, but the
    // initiator still pays per-IPI send cost plus the slowest handler.
    std::uint64_t pages = pageAlignUp(len) / kPageBytes;
    Cycles local_flush = pages * 2;
    for (std::uint64_t p = 0; p < pages; ++p)
        mmus_[initiator]->invalidatePage(va + p * kPageBytes);

    Cycles send_total = 0;
    Cycles slowest_handler = 0;
    for (unsigned core = 0; core < cfg_.numCores; ++core) {
        if (core == initiator)
            continue;
        for (std::uint64_t p = 0; p < pages; ++p)
            mmus_[core]->invalidatePage(va + p * kPageBytes);
        send_total += costs_.ipiCycles / 4; // send side of each IPI
        Cycles handler = costs_.ipiCycles + pages * 2;
        if (coherence_.mesh().crossSocket(initiator, core))
            handler += cfg_.interSocketCycles * 2;
        slowest_handler = std::max(slowest_handler, handler);
        ++ipis;
    }
    return local_flush + send_total + slowest_handler;
}

VmOpResult
PosixVm::mmap(unsigned core, std::uint64_t len, PagePerms perms)
{
    VmOpResult res;
    if (len == 0)
        return res;
    len = pageAlignUp(len);

    Addr va = nextVa_;
    Addr pa = nextPa_;
    nextVa_ += len + kPageBytes; // guard page
    nextPa_ += len;

    if (!table_.map(va, pa, len, perms))
        return res;
    vmas_[va] = OsVma{va, len, perms};

    std::uint64_t pages = len / kPageBytes;
    res.ok = true;
    res.addr = va;
    res.latency = costs_.syscallCycles + costs_.vmaTreeCycles +
                  pages * costs_.perPageCycles;
    // Touch the leaf PTE lines (kernel writes them).
    for (std::uint64_t p = 0; p < pages; ++p) {
        auto path = table_.walkPath(va + p * kPageBytes);
        if (!path.empty())
            res.latency += coherence_.write(core, path.back()).latency;
    }
    return res;
}

VmOpResult
PosixVm::munmap(unsigned core, Addr va, std::uint64_t len)
{
    VmOpResult res;
    auto it = vmas_.find(va);
    if (it == vmas_.end() || it->second.len != pageAlignUp(len))
        return res;

    std::uint64_t pages = pageAlignUp(len) / kPageBytes;
    table_.unmap(va, len);
    vmas_.erase(it);

    res.ok = true;
    res.latency = costs_.syscallCycles + costs_.vmaTreeCycles +
                  pages * costs_.perPageCycles;
    res.latency += shootdown(core, va, len, res.ipis);
    return res;
}

VmOpResult
PosixVm::mprotect(unsigned core, Addr va, std::uint64_t len,
                  PagePerms perms)
{
    VmOpResult res;
    std::uint64_t updated = table_.protect(va, len, perms);
    if (updated == 0)
        return res;
    auto it = vmas_.find(va);
    if (it != vmas_.end())
        it->second.perms = perms;

    res.ok = true;
    res.latency = costs_.syscallCycles + costs_.vmaTreeCycles +
                  updated * costs_.perPageCycles;
    // Kernel rewrites the PTEs...
    for (std::uint64_t p = 0; p < updated; ++p) {
        auto path = table_.walkPath(va + p * kPageBytes);
        if (!path.empty())
            res.latency += coherence_.write(core, path.back()).latency;
    }
    // ...then must make every core's TLB coherent.
    res.latency += shootdown(core, va, len, res.ipis);
    return res;
}

VmOpResult
PosixVm::access(unsigned core, Addr va, bool write)
{
    VmOpResult res;
    WalkResult walk = mmus_[core]->translate(va);
    res.latency = walk.latency;
    if (!walk.translation)
        return res; // page fault
    PagePerms need;
    need.read = !write;
    need.write = write;
    if (!walk.translation->perms.covers(need))
        return res; // protection fault
    mem::Access acc = write
                          ? coherence_.write(core, walk.translation->pa)
                          : coherence_.read(core, walk.translation->pa);
    res.latency += acc.latency;
    res.ok = true;
    res.addr = walk.translation->pa;
    return res;
}

} // namespace jord::vm
