#include "vm/tlb.hh"

#include "sim/logging.hh"

namespace jord::vm {

using sim::Addr;

Tlb::Tlb(unsigned entries, unsigned assoc)
{
    if (entries == 0)
        sim::fatal("TLB must have at least one entry");
    if (assoc == 0 || assoc > entries)
        assoc = entries; // fully associative
    if (entries % assoc != 0)
        sim::fatal("TLB entries (%u) not divisible by assoc (%u)",
                   entries, assoc);
    entries_.assign(entries, Entry{});
    assoc_ = assoc;
    numSets_ = entries / assoc;
}

unsigned
Tlb::setOf(Addr vpn) const
{
    return static_cast<unsigned>(vpn % numSets_);
}

Tlb::Entry *
Tlb::findEntry(Addr vpn)
{
    unsigned set = setOf(vpn);
    for (unsigned way = 0; way < assoc_; ++way) {
        Entry &entry = entries_[set * assoc_ + way];
        if (entry.valid && entry.vpn == vpn)
            return &entry;
    }
    return nullptr;
}

const Tlb::Entry *
Tlb::findEntry(Addr vpn) const
{
    return const_cast<Tlb *>(this)->findEntry(vpn);
}

std::optional<Translation>
Tlb::lookup(Addr va)
{
    Addr vpn = va >> kPageShift;
    Entry *entry = findEntry(vpn);
    if (!entry) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    entry->lastUse = ++useClock_;
    Translation t = entry->translation;
    t.pa += va & (kPageBytes - 1);
    return t;
}

std::optional<Translation>
Tlb::probe(Addr va) const
{
    const Entry *entry = findEntry(va >> kPageShift);
    if (!entry)
        return std::nullopt;
    return entry->translation;
}

void
Tlb::insert(Addr va, const Translation &translation)
{
    Addr vpn = va >> kPageShift;
    Translation base = translation;
    base.pa = pageAlignDown(base.pa);

    if (Entry *hit = findEntry(vpn)) {
        hit->translation = base;
        hit->lastUse = ++useClock_;
        return;
    }

    unsigned set = setOf(vpn);
    Entry *victim = nullptr;
    for (unsigned way = 0; way < assoc_; ++way) {
        Entry &entry = entries_[set * assoc_ + way];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (!victim || entry.lastUse < victim->lastUse)
            victim = &entry;
    }
    if (victim->valid)
        ++stats_.evictions;
    victim->valid = true;
    victim->vpn = vpn;
    victim->translation = base;
    victim->lastUse = ++useClock_;
}

bool
Tlb::invalidatePage(Addr va)
{
    Entry *entry = findEntry(va >> kPageShift);
    if (!entry)
        return false;
    entry->valid = false;
    ++stats_.invalidations;
    return true;
}

void
Tlb::invalidateAll()
{
    for (auto &entry : entries_) {
        if (entry.valid) {
            entry.valid = false;
            ++stats_.invalidations;
        }
    }
}

unsigned
Tlb::occupancy() const
{
    unsigned n = 0;
    for (const auto &entry : entries_)
        if (entry.valid)
            ++n;
    return n;
}

} // namespace jord::vm
