/**
 * @file
 * Conventional TLB model with LRU replacement.
 *
 * Models the Table 2 hierarchy: fully associative 48-entry L1 I/D TLBs
 * and a 4-way 1024-entry L2 TLB. Page-granularity tags; invalidation by
 * page or wholesale (shootdown).
 */

#ifndef JORD_VM_TLB_HH
#define JORD_VM_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hh"
#include "vm/page_table.hh"

namespace jord::vm {

/** TLB hit/miss statistics. */
struct TlbStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * A set-associative (or fully associative) page-granularity TLB.
 */
class Tlb
{
  public:
    /**
     * @param entries Total entry count.
     * @param assoc Ways per set; 0 means fully associative.
     */
    explicit Tlb(unsigned entries, unsigned assoc = 0);

    /** Look up a VA; updates LRU state on hit. */
    std::optional<Translation> lookup(sim::Addr va);

    /** Probe without touching LRU (for tests/inspection). */
    std::optional<Translation> probe(sim::Addr va) const;

    /** Insert a translation for the page containing @p va. */
    void insert(sim::Addr va, const Translation &translation);

    /** Invalidate the entry for one page, if present. */
    bool invalidatePage(sim::Addr va);

    /** Invalidate everything (global shootdown). */
    void invalidateAll();

    unsigned capacity() const { return static_cast<unsigned>(entries_.size()); }
    unsigned occupancy() const;

    const TlbStats &stats() const { return stats_; }
    void resetStats() { stats_ = TlbStats{}; }

  private:
    struct Entry {
        bool valid = false;
        sim::Addr vpn = 0;
        Translation translation;
        std::uint64_t lastUse = 0;
    };

    std::vector<Entry> entries_;
    unsigned numSets_;
    unsigned assoc_;
    std::uint64_t useClock_ = 0;
    TlbStats stats_;

    unsigned setOf(sim::Addr vpn) const;
    Entry *findEntry(sim::Addr vpn);
    const Entry *findEntry(sim::Addr vpn) const;
};

} // namespace jord::vm

#endif // JORD_VM_TLB_HH
