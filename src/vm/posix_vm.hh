/**
 * @file
 * OS-mediated virtual memory operations with TLB-shootdown cost model.
 *
 * Models the slow path the paper argues against (§2.2): mmap/munmap/
 * mprotect as syscalls that traverse and modify the radix page table and
 * broadcast IPI-based TLB shootdowns to every core that may cache the
 * affected translations. Used by the NightCore baseline and by
 * comparison micro-benchmarks.
 */

#ifndef JORD_VM_POSIX_VM_HH
#define JORD_VM_POSIX_VM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "mem/coherence.hh"
#include "vm/page_table.hh"
#include "vm/walker.hh"

namespace jord::vm {

/** Software cost constants for the OS path. */
struct OsCosts {
    /** Syscall entry + exit (trap, register save/restore, audit). */
    sim::Cycles syscallCycles = sim::nsToCycles(250.0);
    /** Deliver one IPI and run the remote flush handler. */
    sim::Cycles ipiCycles = sim::nsToCycles(1000.0);
    /** Kernel bookkeeping per page (VMA tree, rmap, counters). */
    sim::Cycles perPageCycles = 80;
    /** Kernel VMA-tree (maple tree) lookup/insert. */
    sim::Cycles vmaTreeCycles = 120;
};

/** Result of an OS VM operation. */
struct VmOpResult {
    bool ok = false;
    sim::Cycles latency = 0;
    sim::Addr addr = 0;
    /** Cores that received a shootdown IPI. */
    unsigned ipis = 0;
};

/**
 * A process's OS-visible virtual memory: VMA list, page table, per-core
 * MMUs, and timed syscalls.
 */
class PosixVm
{
  public:
    PosixVm(const sim::MachineConfig &cfg,
            mem::CoherenceEngine &coherence);

    /** Allocate and map @p len bytes; returns the chosen VA. */
    VmOpResult mmap(unsigned core, std::uint64_t len, PagePerms perms);

    /** Unmap a region previously returned by mmap. */
    VmOpResult munmap(unsigned core, sim::Addr va, std::uint64_t len);

    /** Change permissions on a mapped region. */
    VmOpResult mprotect(unsigned core, sim::Addr va, std::uint64_t len,
                        PagePerms perms);

    /**
     * Timed load/store through the conventional MMU.
     * @return latency; faults are reported with ok == false.
     */
    VmOpResult access(unsigned core, sim::Addr va, bool write);

    PageTable &pageTable() { return table_; }
    Mmu &mmu(unsigned core) { return *mmus_[core]; }
    const OsCosts &costs() const { return costs_; }
    OsCosts &costs() { return costs_; }

    /** Number of live OS VMAs. */
    std::size_t numVmas() const { return vmas_.size(); }

  private:
    struct OsVma {
        sim::Addr base;
        std::uint64_t len;
        PagePerms perms;
    };

    const sim::MachineConfig &cfg_;
    mem::CoherenceEngine &coherence_;
    PageTable table_;
    std::vector<std::unique_ptr<Mmu>> mmus_;
    std::map<sim::Addr, OsVma> vmas_;
    OsCosts costs_;
    sim::Addr nextVa_;
    sim::Addr nextPa_;

    /**
     * Broadcast a shootdown for [va, va+len) to every core except the
     * initiator; returns the latency (initiator waits for all acks) and
     * the IPI count.
     */
    sim::Cycles shootdown(unsigned initiator, sim::Addr va,
                          std::uint64_t len, unsigned &ipis);
};

} // namespace jord::vm

#endif // JORD_VM_POSIX_VM_HH
