#include "vm/walker.hh"

namespace jord::vm {

using sim::Addr;
using sim::Cycles;

Mmu::Mmu(const sim::MachineConfig &cfg, mem::CoherenceEngine &coherence,
         PageTable &table, unsigned core)
    : cfg_(cfg),
      coherence_(coherence),
      table_(table),
      core_(core),
      l1_(cfg.l1TlbEntries, 0),
      l2_(cfg.l2TlbEntries, cfg.l2TlbAssoc)
{
}

WalkResult
Mmu::translate(Addr va)
{
    WalkResult res;

    // L1 TLB: overlapped with the L1 cache access; charge one cycle.
    if (auto t = l1_.lookup(va)) {
        res.latency = 1;
        res.translation = t;
        res.l1TlbHit = true;
        return res;
    }
    res.latency = 1;

    // L2 TLB probe.
    res.latency += cfg_.l2TlbCycles;
    if (auto t = l2_.lookup(va)) {
        res.translation = t;
        res.l2TlbHit = true;
        l1_.insert(va, *t);
        return res;
    }

    // Hardware walk: one memory access per level actually touched.
    std::vector<Addr> path = table_.walkPath(va);
    for (Addr pte : path) {
        mem::Access acc = coherence_.read(core_, pte);
        res.latency += acc.latency;
    }
    res.levelsWalked = static_cast<unsigned>(path.size());

    auto t = table_.translate(va);
    if (t) {
        res.translation = t;
        l1_.insert(va, *t);
        l2_.insert(va, *t);
    }
    return res;
}

void
Mmu::invalidatePage(Addr va)
{
    l1_.invalidatePage(va);
    l2_.invalidatePage(va);
}

void
Mmu::invalidateAll()
{
    l1_.invalidateAll();
    l2_.invalidateAll();
}

} // namespace jord::vm
