/**
 * @file
 * Functional 4-level radix page table (Sv48-style).
 *
 * This is the traditional page-based translation substrate that Jord
 * extends rather than replaces (§2.2, §4.1): the OS-managed path used by
 * the NightCore baseline, and the fallback for VAs outside the UAT
 * region. The table is a real pointer-linked radix tree; every page-table
 * node has a synthetic physical address so the timed page-table walker
 * can charge its accesses to the coherence engine.
 */

#ifndef JORD_VM_PAGE_TABLE_HH
#define JORD_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/types.hh"

namespace jord::vm {

/** Page size of the conventional VM system. */
inline constexpr std::uint64_t kPageBytes = 4096;
inline constexpr unsigned kPageShift = 12;
/** Radix bits per level; 4 levels cover a 48-bit VA. */
inline constexpr unsigned kLevelBits = 9;
inline constexpr unsigned kNumLevels = 4;
inline constexpr unsigned kEntriesPerNode = 1u << kLevelBits;

/** Align an address down/up to a page boundary. */
inline constexpr sim::Addr
pageAlignDown(sim::Addr addr)
{
    return addr & ~(kPageBytes - 1);
}

inline constexpr sim::Addr
pageAlignUp(sim::Addr addr)
{
    return (addr + kPageBytes - 1) & ~(kPageBytes - 1);
}

/** Page permissions. */
struct PagePerms {
    bool read = false;
    bool write = false;
    bool exec = false;

    bool operator==(const PagePerms &) const = default;

    /** True if this grants everything @p need requires. */
    bool
    covers(const PagePerms &need) const
    {
        return (!need.read || read) && (!need.write || write) &&
               (!need.exec || exec);
    }

    static PagePerms rw() { return {true, true, false}; }
    static PagePerms ro() { return {true, false, false}; }
    static PagePerms rx() { return {true, false, true}; }
    static PagePerms none() { return {}; }
};

/** A successful translation. */
struct Translation {
    sim::Addr pa = 0;
    PagePerms perms;
};

/**
 * The radix page table.
 */
class PageTable
{
  public:
    PageTable();
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Map [va, va+len) to [pa, pa+len) with @p perms. Both addresses must
     * be page-aligned; len is rounded up to whole pages.
     * @retval false if any page in the range is already mapped.
     */
    bool map(sim::Addr va, sim::Addr pa, std::uint64_t len,
             PagePerms perms);

    /**
     * Unmap [va, va+len). Pages that are not mapped are skipped.
     * @return number of pages actually unmapped.
     */
    std::uint64_t unmap(sim::Addr va, std::uint64_t len);

    /**
     * Change permissions on all mapped pages in [va, va+len).
     * @return number of pages updated.
     */
    std::uint64_t protect(sim::Addr va, std::uint64_t len,
                          PagePerms perms);

    /** Translate one VA; nullopt on a page fault. */
    std::optional<Translation> translate(sim::Addr va) const;

    /**
     * Synthetic physical addresses of the page-table entries a hardware
     * walker touches to translate @p va, root first. Always kNumLevels
     * entries for a mapped VA; shorter if the walk aborts early.
     */
    std::vector<sim::Addr> walkPath(sim::Addr va) const;

    /** Number of leaf pages currently mapped. */
    std::uint64_t numMappedPages() const { return numMapped_; }

    /** Number of allocated page-table nodes (including the root). */
    std::uint64_t numNodes() const { return numNodes_; }

  private:
    struct Node;

    struct Entry {
        bool valid = false;
        bool leaf = false;
        sim::Addr pa = 0;
        PagePerms perms;
        std::unique_ptr<Node> child;
    };

    struct Node {
        std::array<Entry, kEntriesPerNode> entries;
        /** Synthetic PA of this node for walker timing. */
        sim::Addr nodePa;
    };

    std::unique_ptr<Node> root_;
    std::uint64_t numMapped_ = 0;
    std::uint64_t numNodes_ = 0;
    /** Bump allocator for synthetic page-table-node physical addresses. */
    sim::Addr nextNodePa_;

    static unsigned levelIndex(sim::Addr va, unsigned level);
    Node *ensureChild(Entry &entry);
    Entry *findLeaf(sim::Addr va) const;
    bool mapPage(sim::Addr va, sim::Addr pa, PagePerms perms);
};

} // namespace jord::vm

#endif // JORD_VM_PAGE_TABLE_HH
