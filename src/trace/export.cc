#include "trace/export.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace jord::trace {

namespace {

/** Escape the few characters that can appear in our names/meta. */
std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

/** Shared attribution args suffix: `,"args":{...}}`. */
void
writeArgs(std::ostream &out, std::uint32_t id, const SpanRecord &rec)
{
    out << ",\"args\":{\"id\":" << id;
    if (rec.parent != 0)
        out << ",\"parent\":" << rec.parent;
    if (rec.req != 0)
        out << ",\"req\":" << rec.req;
    if (rec.fn >= 0)
        out << ",\"fn\":" << rec.fn;
    if (rec.measured)
        out << ",\"measured\":1";
    out << "}}";
}

} // namespace

void
writeChromeTrace(const Tracer &tracer, std::ostream &out)
{
    const double ticks_per_us = tracer.freqGhz() * 1000.0;
    char ts[64];
    auto us = [&](sim::Tick tick) -> const char * {
        std::snprintf(ts, sizeof(ts), "%.6f",
                      static_cast<double>(tick) / ticks_per_us);
        return ts;
    };

    // Metadata records label the tracks: one process_name per pid
    // (pid 0 is the worker unless renamed; fleet traces register one
    // pid per server), one thread_name per named track under its pid.
    const auto &processes = tracer.processNames();
    std::string pid0 = "jord worker";
    if (auto it = processes.find(0); it != processes.end())
        pid0 = it->second;
    out << "{\"traceEvents\":[\n";
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":"
           "\"process_name\",\"args\":{\"name\":\""
        << jsonEscape(pid0) << "\"}}";
    for (const auto &[pid, name] : processes) {
        if (pid == 0)
            continue;
        out << ",\n{\"ph\":\"M\",\"pid\":" << pid
            << ",\"tid\":0,\"name\":\"process_name\",\"args\":"
               "{\"name\":\"" << jsonEscape(name) << "\"}}";
    }
    for (const auto &[track, name] : tracer.trackNames()) {
        out << ",\n{\"ph\":\"M\",\"pid\":" << tracer.trackPid(track)
            << ",\"tid\":" << track
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
            << jsonEscape(name) << "\"}}";
    }

    std::size_t dropped = 0;
    const auto &spans = tracer.spans();
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const SpanRecord &rec = spans[i];
        if (rec.open) {
            ++dropped;
            continue;
        }
        std::uint32_t id = static_cast<std::uint32_t>(i + 1);
        const char *cat = categoryName(rec.cat);
        const std::string name = jsonEscape(tracer.spanName(rec));
        unsigned pid = tracer.trackPid(rec.track);
        bool async = rec.cat == Category::Request ||
                     rec.cat == Category::Invoke;
        if (async) {
            // Lifecycle spans overlap on a track; use async events.
            out << ",\n{\"ph\":\"b\",\"pid\":" << pid << ",\"tid\":"
                << rec.track << ",\"id\":" << id << ",\"ts\":"
                << us(rec.start) << ",\"name\":\"" << name
                << "\",\"cat\":\"" << cat << "\"";
            writeArgs(out, id, rec);
            out << ",\n{\"ph\":\"e\",\"pid\":" << pid << ",\"tid\":"
                << rec.track << ",\"id\":" << id << ",\"ts\":"
                << us(rec.end) << ",\"name\":\"" << name
                << "\",\"cat\":\"" << cat << "\"}";
        } else {
            out << ",\n{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":"
                << rec.track << ",\"ts\":" << us(rec.start)
                << ",\"dur\":" << us(rec.end - rec.start)
                << ",\"name\":\"" << name << "\",\"cat\":\"" << cat
                << "\"";
            writeArgs(out, id, rec);
        }
    }

    out << "\n],\n\"displayTimeUnit\":\"ns\",\n\"otherData\":{";
    out << "\"freq_ghz\":\"";
    char freq[32];
    std::snprintf(freq, sizeof(freq), "%.6f", tracer.freqGhz());
    out << freq << "\"";
    for (const auto &[key, value] : tracer.meta())
        out << ",\"" << jsonEscape(key) << "\":\"" << jsonEscape(value)
            << "\"";
    if (dropped > 0)
        out << ",\"dropped_open_spans\":\"" << dropped << "\"";
    out << "}}\n";
}

std::string
chromeTraceJson(const Tracer &tracer)
{
    std::ostringstream out;
    writeChromeTrace(tracer, out);
    return out.str();
}

} // namespace jord::trace
