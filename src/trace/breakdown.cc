#include "trace/breakdown.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "stats/table.hh"

namespace jord::trace {

namespace {

/** The five attributable categories, indexed 0..4. */
constexpr unsigned kNumCats = 5;

int
catIndex(Category cat)
{
    switch (cat) {
      case Category::Exec: return 0;
      case Category::Isolation: return 1;
      case Category::Dispatch: return 2;
      case Category::Comm: return 3;
      case Category::Pipe: return 4;
      default: return -1;
    }
}

/** One request's joined accounting while scanning the trace. */
struct PerRequest {
    double catUs[kNumCats] = {0, 0, 0, 0, 0};
    double serviceUs = -1; ///< < 0 until the invoke span is seen
    std::int32_t fn = -1;
    std::string fnName;
    bool measured = false;
};

/** Running per-function aggregate. */
struct FnAgg {
    std::string name;
    std::uint64_t invocations = 0;
    double serviceUs = 0;
    double catUs[kNumCats] = {0, 0, 0, 0, 0};
    double queueUs = 0;
};

BreakdownReport
aggregate(const std::map<std::uint64_t, PerRequest> &reqs,
          std::map<std::string, std::string> meta)
{
    std::map<std::int32_t, FnAgg> byFn;
    for (const auto &[req, pr] : reqs) {
        (void)req;
        // Only invocations that completed inside the measured window
        // contribute, mirroring the runtime's accounting.
        if (pr.serviceUs < 0 || !pr.measured)
            continue;
        FnAgg &agg = byFn[pr.fn];
        if (agg.name.empty())
            agg.name = pr.fnName;
        ++agg.invocations;
        agg.serviceUs += pr.serviceUs;
        double accounted = 0;
        for (unsigned c = 0; c < kNumCats; ++c) {
            agg.catUs[c] += pr.catUs[c];
            accounted += pr.catUs[c];
        }
        // Residual clamped per invocation, as the runtime does (the
        // dispatch share accrues before the service window opens, so
        // short invocations can be over-accounted).
        if (pr.serviceUs > accounted)
            agg.queueUs += pr.serviceUs - accounted;
    }

    BreakdownReport report;
    report.meta = std::move(meta);
    for (const auto &[fn, agg] : byFn) {
        BreakdownRow row;
        row.fn = agg.name;
        row.fnId = fn;
        row.invocations = agg.invocations;
        double n = static_cast<double>(agg.invocations);
        row.serviceUs = agg.serviceUs / n;
        row.execUs = agg.catUs[0] / n;
        row.isolationUs = agg.catUs[1] / n;
        row.dispatchUs = agg.catUs[2] / n;
        row.commUs = agg.catUs[3] / n;
        row.pipeUs = agg.catUs[4] / n;
        row.queueUs = agg.queueUs / n;
        report.rows.push_back(std::move(row));
    }
    return report;
}

// --- Minimal extractors for our own line-oriented JSON ---------------

/** Extract the numeric value following `"key":`; NAN-free: ok flag. */
bool
jsonNumber(const std::string &line, const char *key, double &out)
{
    std::size_t pos = line.find(key);
    if (pos == std::string::npos)
        return false;
    out = std::strtod(line.c_str() + pos + std::strlen(key), nullptr);
    return true;
}

/** Extract the string value following `"key":"` up to the next `"`. */
bool
jsonString(const std::string &line, const char *key, std::string &out)
{
    std::size_t pos = line.find(key);
    if (pos == std::string::npos)
        return false;
    pos += std::strlen(key);
    std::size_t end = line.find('"', pos);
    if (end == std::string::npos)
        return false;
    out = line.substr(pos, end - pos);
    return true;
}

} // namespace

double
BreakdownRow::overheadPct() const
{
    double overhead = isolationUs + dispatchUs + pipeUs;
    return serviceUs > 0 ? 100.0 * overhead / serviceUs : 0;
}

const BreakdownRow *
BreakdownReport::row(const std::string &fn) const
{
    for (const BreakdownRow &r : rows)
        if (r.fn == fn)
            return &r;
    return nullptr;
}

BreakdownReport
analyzeSpans(const Tracer &tracer)
{
    const double ticks_per_us = tracer.freqGhz() * 1000.0;
    // std::map so aggregation visits requests in id order: byFn
    // accumulates floats, and float addition is not associative.
    std::map<std::uint64_t, PerRequest> reqs;
    for (const SpanRecord &rec : tracer.spans()) {
        if (rec.open || rec.req == 0)
            continue;
        double dur_us =
            static_cast<double>(rec.end - rec.start) / ticks_per_us;
        PerRequest &pr = reqs[rec.req];
        if (rec.cat == Category::Invoke) {
            pr.serviceUs = dur_us;
            pr.fn = rec.fn;
            pr.fnName = tracer.spanName(rec);
            pr.measured = rec.measured;
        } else if (int c = catIndex(rec.cat); c >= 0) {
            pr.catUs[c] += dur_us;
        }
    }
    return aggregate(reqs, tracer.meta());
}

BreakdownReport
analyzeChromeTrace(std::istream &in)
{
    // std::map so aggregation visits requests in id order: byFn
    // accumulates floats, and float addition is not associative.
    std::map<std::uint64_t, PerRequest> reqs;
    /** Open async ("b") events awaiting their "e", by span id. */
    struct OpenAsync {
        double tsUs = 0;
        double req = 0;
        double fn = -1;
        std::string name;
        bool measured = false;
    };
    std::unordered_map<std::uint64_t, OpenAsync> openAsync;
    std::map<std::string, std::string> meta;

    std::string line, ph, cat;
    while (std::getline(in, line)) {
        if (line.find("\"otherData\":{") != std::string::npos) {
            std::string value;
            for (const char *key : {"system", "workload", "freq_ghz",
                                    "machine", "mrps", "seed"}) {
                std::string pat = "\"" + std::string(key) + "\":\"";
                if (jsonString(line, pat.c_str(), value))
                    meta[key] = value;
            }
            continue;
        }
        if (!jsonString(line, "\"ph\":\"", ph))
            continue;
        if (ph == "X") {
            double dur = 0, req = 0;
            if (!jsonString(line, "\"cat\":\"", cat) ||
                !jsonNumber(line, "\"dur\":", dur) ||
                !jsonNumber(line, "\"req\":", req))
                continue;
            Category c;
            if (!categoryFromName(cat, c) || catIndex(c) < 0)
                continue;
            PerRequest &pr = reqs[static_cast<std::uint64_t>(req)];
            pr.catUs[catIndex(c)] += dur;
        } else if (ph == "b") {
            double id = 0, ts = 0;
            if (!jsonString(line, "\"cat\":\"", cat) || cat != "invoke" ||
                !jsonNumber(line, "\"id\":", id) ||
                !jsonNumber(line, "\"ts\":", ts))
                continue;
            OpenAsync open;
            open.tsUs = ts;
            jsonNumber(line, "\"req\":", open.req);
            jsonNumber(line, "\"fn\":", open.fn);
            double measured = 0;
            jsonNumber(line, "\"measured\":", measured);
            open.measured = measured != 0;
            jsonString(line, "\"name\":\"", open.name);
            openAsync[static_cast<std::uint64_t>(id)] = open;
        } else if (ph == "e") {
            double id = 0, ts = 0;
            if (!jsonNumber(line, "\"id\":", id) ||
                !jsonNumber(line, "\"ts\":", ts))
                continue;
            auto it = openAsync.find(static_cast<std::uint64_t>(id));
            if (it == openAsync.end())
                continue;
            const OpenAsync &open = it->second;
            PerRequest &pr =
                reqs[static_cast<std::uint64_t>(open.req)];
            pr.serviceUs = ts - open.tsUs;
            pr.fn = static_cast<std::int32_t>(open.fn);
            pr.fnName = open.name;
            pr.measured = open.measured;
            openAsync.erase(it);
        }
    }
    return aggregate(reqs, std::move(meta));
}

std::string
renderBreakdown(const BreakdownReport &report)
{
    stats::Table table({"Fn", "Invocations", "Service (us)", "Exec (us)",
                        "Isolation (us)", "Dispatch (us)", "Comm (us)",
                        "Pipe (us)", "Wait (us)", "Overhead %"});
    for (const BreakdownRow &row : report.rows) {
        table.addRow({row.fn, stats::Table::cell(row.invocations),
                      stats::Table::cell(row.serviceUs, "%.2f"),
                      stats::Table::cell(row.execUs, "%.2f"),
                      stats::Table::cell(row.isolationUs, "%.3f"),
                      stats::Table::cell(row.dispatchUs, "%.3f"),
                      stats::Table::cell(row.commUs, "%.3f"),
                      stats::Table::cell(row.pipeUs, "%.2f"),
                      stats::Table::cell(row.queueUs, "%.2f"),
                      stats::Table::cell(row.overheadPct(), "%.1f")});
    }
    return table.render();
}

} // namespace jord::trace
