/**
 * @file
 * Process-wide metrics registry.
 *
 * Modules register named metrics — monotonic counters, simulated-
 * time-weighted gauges, and value histograms — instead of growing
 * their own one-off statistic structs. Registration is idempotent:
 * asking for an existing name of the same kind returns the same
 * instance, so independent modules can share a metric by name;
 * re-registering a name under a different kind is a programming error
 * and throws std::logic_error.
 *
 * All simulated-time weighting uses ticks supplied by the caller, so
 * the registry itself has no clock dependency and stays deterministic.
 */

#ifndef JORD_TRACE_METRICS_HH
#define JORD_TRACE_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "sim/types.hh"
#include "stats/histogram.hh"

namespace jord::trace {

/** A monotonically increasing count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = mark_ = 0; }

    /**
     * Snapshot-and-reset for windowed streams: returns the amount
     * added since the previous intervalReset() (or since creation)
     * and advances the interval mark. The cumulative value() is
     * untouched, so end-of-run exports still see the full count.
     */
    std::uint64_t
    intervalReset()
    {
        std::uint64_t delta = value_ - mark_;
        mark_ = value_;
        return delta;
    }

  private:
    std::uint64_t value_ = 0;
    std::uint64_t mark_ = 0;
};

/**
 * A level that varies over simulated time (queue depth, busy
 * executors). Each set() weights the previous level by the simulated
 * time it persisted, so mean() is the time-weighted average level.
 */
class Gauge
{
  public:
    /** Record that the level becomes @p value at tick @p now. */
    void
    set(double value, sim::Tick now)
    {
        if (started_) {
            weightedSum_ +=
                value_ * static_cast<double>(now - lastTick_);
            span_ += now - lastTick_;
        } else {
            started_ = true;
        }
        value_ = value;
        lastTick_ = now;
        if (value > max_)
            max_ = value;
    }

    void add(double delta, sim::Tick now) { set(value_ + delta, now); }

    /** The current level. */
    double value() const { return value_; }

    double max() const { return max_; }

    /** Time-weighted mean level over the observed span. */
    double
    mean() const
    {
        return span_ ? weightedSum_ / static_cast<double>(span_)
                     : value_;
    }

    void
    reset()
    {
        value_ = weightedSum_ = max_ = 0;
        span_ = 0;
        started_ = false;
    }

  private:
    double value_ = 0;
    double weightedSum_ = 0;
    double max_ = 0;
    sim::Tick lastTick_ = 0;
    sim::Tick span_ = 0;
    bool started_ = false;
};

/**
 * Distribution of non-negative integer values (latencies in ns,
 * sizes in bytes). Thin wrapper over the log-linear stats::Histogram
 * with recordWeighted() for simulated-time-weighted distributions.
 */
class Distribution
{
  public:
    void record(std::uint64_t value) { hist_.record(value); }

    /** Record @p value weighted by the simulated time it persisted. */
    void
    recordWeighted(std::uint64_t value, sim::Tick ticks)
    {
        hist_.recordN(value, ticks);
    }

    std::uint64_t count() const { return hist_.count(); }
    double mean() const { return hist_.mean(); }
    std::uint64_t min() const { return hist_.min(); }
    std::uint64_t max() const { return hist_.max(); }
    std::uint64_t p50() const { return hist_.p50(); }
    std::uint64_t p99() const { return hist_.p99(); }
    void reset() { hist_.reset(); }

  private:
    stats::Histogram hist_;
};

/**
 * The registry: a flat namespace of metrics, ordered by name so every
 * export is deterministic.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Find-or-create a metric. @throws std::logic_error when @p name
     * is already registered under a different kind.
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Distribution &distribution(const std::string &name);

    bool contains(const std::string &name) const;
    std::size_t size() const { return metrics_.size(); }

    /**
     * Dump all metrics as CSV:
     * `name,kind,count,value,mean,min,max,p50,p99` — columns not
     * meaningful for a kind are left empty.
     */
    void writeCsv(std::ostream &out) const;

    /** Zero every metric (registrations survive). */
    void reset();

  private:
    enum class Kind { Counter, Gauge, Distribution };

    struct Entry {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Distribution> dist;
    };

    std::map<std::string, Entry> metrics_;

    Entry &fetch(const std::string &name, Kind kind);
};

} // namespace jord::trace

#endif // JORD_TRACE_METRICS_HH
