/**
 * @file
 * Service-time breakdown analyzer (the Fig. 11 view of a trace).
 *
 * Joins every request's category spans (exec / isolation / dispatch /
 * comm / pipe) against its invocation span and aggregates per-function
 * means, attributing the unaccounted remainder of each invocation's
 * service window to queueing/waiting — the same accounting the
 * runtime's RunResult breakdown performs, but recomputed purely from
 * the trace. Works from a live Tracer (in-process benches) or from an
 * exported Chrome trace-event JSON file (tools/trace_report).
 */

#ifndef JORD_TRACE_BREAKDOWN_HH
#define JORD_TRACE_BREAKDOWN_HH

#include <istream>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace jord::trace {

/** Mean per-invocation breakdown of one function's service time. */
struct BreakdownRow {
    std::string fn;
    std::int32_t fnId = -1;
    std::uint64_t invocations = 0;
    double serviceUs = 0;
    double execUs = 0;
    double isolationUs = 0;
    double dispatchUs = 0;
    double commUs = 0;
    double pipeUs = 0;
    double queueUs = 0;

    /** Isolation + dispatch + pipe share of the service time (%). */
    double overheadPct() const;
};

/** The analyzed breakdown plus the trace's identifying metadata. */
struct BreakdownReport {
    std::map<std::string, std::string> meta; ///< system, workload, ...
    std::vector<BreakdownRow> rows;          ///< ordered by fn id

    /** Look a row up by function name; nullptr when absent. */
    const BreakdownRow *row(const std::string &fn) const;
};

/** Analyze a live trace (measured invocations only). */
BreakdownReport analyzeSpans(const Tracer &tracer);

/** Parse an exported Chrome trace-event JSON stream and analyze it. */
BreakdownReport analyzeChromeTrace(std::istream &in);

/** Render the report as an aligned ASCII table. */
std::string renderBreakdown(const BreakdownReport &report);

} // namespace jord::trace

#endif // JORD_TRACE_BREAKDOWN_HH
