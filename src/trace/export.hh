/**
 * @file
 * Trace exporters.
 *
 * writeChromeTrace() emits the Chrome trace-event JSON flavour that
 * Perfetto and chrome://tracing load directly: one event object per
 * line, timestamps in microseconds of *simulated* time. Busy-time
 * spans (exec, isolation, dispatch, comm, pipe, hw) become complete
 * ("X") events on their core's thread track; request and invocation
 * lifecycle spans overlap arbitrarily, so they are emitted as async
 * ("b"/"e") event pairs keyed by span id.
 *
 * The line-oriented layout is deliberate: tools/trace_report parses
 * traces back with no JSON dependency, and byte-identical output for
 * identical runs makes traces golden-testable.
 */

#ifndef JORD_TRACE_EXPORT_HH
#define JORD_TRACE_EXPORT_HH

#include <ostream>
#include <string>

#include "trace/trace.hh"

namespace jord::trace {

/** Write the full trace as Chrome trace-event JSON. */
void writeChromeTrace(const Tracer &tracer, std::ostream &out);

/** Convenience: the same JSON as a string (tests, small traces). */
std::string chromeTraceJson(const Tracer &tracer);

} // namespace jord::trace

#endif // JORD_TRACE_EXPORT_HH
