#include "trace/metrics.hh"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace jord::trace {

namespace {

const char *
kindName(unsigned kind)
{
    switch (kind) {
      case 0: return "counter";
      case 1: return "gauge";
      case 2: return "distribution";
    }
    return "?";
}

} // namespace

MetricsRegistry::Entry &
MetricsRegistry::fetch(const std::string &name, Kind kind)
{
    auto it = metrics_.find(name);
    if (it != metrics_.end()) {
        if (it->second.kind != kind)
            throw std::logic_error(
                "metric '" + name + "' already registered as " +
                kindName(static_cast<unsigned>(it->second.kind)) +
                ", requested as " +
                kindName(static_cast<unsigned>(kind)));
        return it->second;
    }
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::Counter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::Gauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::Distribution:
        entry.dist = std::make_unique<Distribution>();
        break;
    }
    return metrics_.emplace(name, std::move(entry)).first->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *fetch(name, Kind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *fetch(name, Kind::Gauge).gauge;
}

Distribution &
MetricsRegistry::distribution(const std::string &name)
{
    return *fetch(name, Kind::Distribution).dist;
}

bool
MetricsRegistry::contains(const std::string &name) const
{
    return metrics_.count(name) != 0;
}

void
MetricsRegistry::writeCsv(std::ostream &out) const
{
    out << "name,kind,count,value,mean,min,max,p50,p99\n";
    char line[256];
    for (const auto &[name, entry] : metrics_) {
        switch (entry.kind) {
          case Kind::Counter:
            std::snprintf(line, sizeof(line),
                          ",counter,,%" PRIu64 ",,,,,\n",
                          entry.counter->value());
            break;
          case Kind::Gauge:
            std::snprintf(line, sizeof(line),
                          ",gauge,,%.6f,%.6f,,%.6f,,\n",
                          entry.gauge->value(), entry.gauge->mean(),
                          entry.gauge->max());
            break;
          case Kind::Distribution:
            std::snprintf(line, sizeof(line),
                          ",distribution,%" PRIu64 ",,%.6f,%" PRIu64
                          ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                          entry.dist->count(), entry.dist->mean(),
                          entry.dist->min(), entry.dist->max(),
                          entry.dist->p50(), entry.dist->p99());
            break;
        }
        out << name << line;
    }
}

void
MetricsRegistry::reset()
{
    for (auto &[name, entry] : metrics_) {
        (void)name;
        switch (entry.kind) {
          case Kind::Counter: entry.counter->reset(); break;
          case Kind::Gauge: entry.gauge->reset(); break;
          case Kind::Distribution: entry.dist->reset(); break;
        }
    }
}

} // namespace jord::trace
