#include "trace/trace.hh"

#include "sim/logging.hh"

namespace jord::trace {

const char *
categoryName(Category cat)
{
    switch (cat) {
      case Category::Exec: return "exec";
      case Category::Isolation: return "isolation";
      case Category::Dispatch: return "dispatch";
      case Category::Comm: return "comm";
      case Category::Pipe: return "pipe";
      case Category::Request: return "request";
      case Category::Invoke: return "invoke";
      case Category::Hw: return "hw";
      case Category::Runtime: return "runtime";
    }
    return "?";
}

bool
categoryFromName(std::string_view name, Category &out)
{
    for (unsigned c = 0; c <= static_cast<unsigned>(Category::Runtime);
         ++c) {
        Category cat = static_cast<Category>(c);
        if (name == categoryName(cat)) {
            out = cat;
            return true;
        }
    }
    return false;
}

Tracer::Tracer(double freq_ghz) : freqGhz_(freq_ghz)
{
    // Name id 0 is reserved so SpanRecord{} is inert.
    names_.emplace_back("");
}

std::uint32_t
Tracer::intern(std::string_view name)
{
    auto it = nameIds_.find(std::string(name));
    if (it != nameIds_.end())
        return it->second;
    std::uint32_t id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(name);
    nameIds_.emplace(names_.back(), id);
    return id;
}

SpanId
Tracer::begin(std::string_view name, Category cat, unsigned track,
              sim::Tick start, SpanId parent, const SpanArgs &args)
{
    SpanRecord rec;
    rec.parent = parent;
    rec.name = intern(name);
    rec.cat = cat;
    rec.track = static_cast<std::uint16_t>(track);
    rec.start = start;
    rec.req = args.req;
    rec.fn = args.fn;
    rec.measured = args.measured;
    spans_.push_back(rec);
    return static_cast<SpanId>(spans_.size());
}

void
Tracer::end(SpanId id, sim::Tick end_tick)
{
    if (id == 0 || id > spans_.size())
        sim::panic("trace: end() on invalid span id %u", id);
    SpanRecord &rec = spans_[id - 1];
    if (!rec.open)
        sim::panic("trace: span %u ended twice", id);
    if (end_tick < rec.start)
        sim::panic("trace: span %u would end before it starts", id);
    rec.end = end_tick;
    rec.open = false;
}

SpanId
Tracer::complete(std::string_view name, Category cat, unsigned track,
                 sim::Tick start, sim::Cycles dur, SpanId parent,
                 const SpanArgs &args)
{
    SpanId id = begin(name, cat, track, start, parent, args);
    end(id, start + dur);
    return id;
}

void
Tracer::setMeta(const std::string &key, const std::string &value)
{
    meta_[key] = value;
}

void
Tracer::setTrackName(unsigned track, const std::string &name)
{
    trackNames_[track] = name;
}

void
Tracer::setProcessName(unsigned pid, const std::string &name)
{
    processNames_[pid] = name;
}

void
Tracer::setTrackPid(unsigned track, unsigned pid)
{
    trackPids_[track] = pid;
}

unsigned
Tracer::trackPid(unsigned track) const
{
    auto it = trackPids_.find(track);
    return it == trackPids_.end() ? 0 : it->second;
}

std::size_t
Tracer::numOpenSpans() const
{
    std::size_t open = 0;
    for (const SpanRecord &rec : spans_)
        if (rec.open)
            ++open;
    return open;
}

void
Tracer::clear()
{
    spans_.clear();
}

} // namespace jord::trace
