/**
 * @file
 * Trace-file integrity check shared by the offline trace tools.
 *
 * jordsim's Chrome trace writer terminates every complete file with
 * the metadata object's closing "}}" (followed only by whitespace);
 * a truncated file — a run killed mid-write, a partial copy — ends
 * inside a span line instead.  Both trace_report and jordlint refuse
 * such files up front rather than silently reporting on the prefix
 * that happened to survive.
 *
 * A complete trace with *zero spans* (an empty run: nothing arrived
 * inside the measured window) is a valid file, not a truncated one:
 * the writer still emits the metadata records and the closing
 * sentinel, and the check accepts it.  Only the downstream analyzers
 * decide whether an empty trace is useful.
 */

#ifndef JORD_TRACE_INTEGRITY_HH
#define JORD_TRACE_INTEGRITY_HH

#include <fstream>
#include <string>

#include "sim/logging.hh"

namespace jord::trace {

/**
 * Fatal unless @p path is a complete Chrome trace JSON file: readable,
 * non-empty, and terminated by the writer's closing "}}". A complete
 * file holding zero spans passes — empty is not truncated.
 */
inline void
requireCompleteTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        sim::fatal("cannot open '%s'", path.c_str());
    in.seekg(0, std::ios::end);
    std::streamoff size = in.tellg();
    if (size <= 0)
        sim::fatal("'%s' is a zero-byte file — not a trace (a "
                   "span-free run still writes the trace header and "
                   "closing \"}}\"; did the producing run finish?)",
                   path.c_str());

    // Only the tail matters; a complete file ends "...}}\n".
    constexpr std::streamoff kTail = 256;
    std::streamoff start = size > kTail ? size - kTail : 0;
    in.seekg(start);
    std::string tail(static_cast<std::size_t>(size - start), '\0');
    in.read(tail.data(), static_cast<std::streamsize>(tail.size()));

    std::size_t end = tail.find_last_not_of(" \t\r\n");
    if (end == std::string::npos || end < 1 ||
        tail.compare(end - 1, 2, "}}") != 0)
        sim::fatal("'%s' is truncated: a complete jordsim trace ends "
                   "with its closing \"}}\" (re-run the producing "
                   "jordsim, or check the copy)",
                   path.c_str());
}

} // namespace jord::trace

#endif // JORD_TRACE_INTEGRITY_HH
