/**
 * @file
 * Request-scoped span tracer keyed by simulated time.
 *
 * A Tracer collects spans — named intervals of simulated time with
 * parent/child links — emitted by the runtime and the hardware models
 * around request lifecycle stages (arrival, JBSQ dispatch, executor
 * run, nested ccall sub-invocations, ArgBuf transfers) and hardware
 * events (VLB miss walks, VTD shootdowns, pipe round-trips). Because
 * the simulator is deterministic, the recorded span stream is
 * byte-stable across runs with the same seed.
 *
 * Tracing is strictly opt-in: modules hold a `Tracer *` that is null
 * by default, so the disabled cost is one pointer test per
 * instrumentation site. All timestamps are simulator ticks; exporters
 * convert to nanoseconds using the machine frequency captured at
 * construction.
 */

#ifndef JORD_TRACE_TRACE_HH
#define JORD_TRACE_TRACE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/arena.hh"
#include "sim/types.hh"

namespace jord::trace {

/** Identifies a recorded span; 0 means "no span". */
using SpanId = std::uint32_t;

/**
 * What a span's duration is attributed to.
 *
 * The first five categories mirror the Fig. 11 service-time breakdown
 * (`runtime::Breakdown`); the analyzer sums only those. The remaining
 * categories carry structure (request/invocation lifecycles) or
 * unattributed detail (hardware events, orchestrator bookkeeping).
 */
enum class Category : std::uint8_t {
    Exec,      ///< function computation segments
    Isolation, ///< PrivLib PD + VMA management
    Dispatch,  ///< orchestrator JBSQ dispatch share
    Comm,      ///< ArgBuf coherence transfers
    Pipe,      ///< NightCore pipe work
    Request,   ///< external request lifetime (arrival -> response)
    Invoke,    ///< one invocation's service window (may span suspends)
    Hw,        ///< hardware events: VTW walks, VLB shootdowns
    Runtime,   ///< unattributed runtime work (intake, provisioning)
};

/** Stable short name of a category (used as the export "cat" field). */
const char *categoryName(Category cat);

/** Parse a category name back; returns false on unknown names. */
bool categoryFromName(std::string_view name, Category &out);

/** Optional attribution attached to a span. */
struct SpanArgs {
    /** Request id the span's cost belongs to (0 = unattributed). */
    std::uint64_t req = 0;
    /** FunctionId of the invocation, -1 when not function-scoped. */
    std::int32_t fn = -1;
    /** Whether the owning request is inside the measured window. */
    bool measured = false;
};

/** One recorded span. Ids are indices + 1 into the span arena. */
struct SpanRecord {
    SpanId parent = 0;
    std::uint32_t name = 0; ///< interned name index
    Category cat = Category::Runtime;
    std::uint16_t track = 0; ///< export thread id (usually a core)
    bool measured = false;
    bool open = true;
    std::int32_t fn = -1;
    sim::Tick start = 0;
    sim::Tick end = 0;
    std::uint64_t req = 0;
};

/**
 * The span collector.
 */
class Tracer
{
  public:
    explicit Tracer(double freq_ghz = sim::kDefaultFreqGhz);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    // --- Clock ------------------------------------------------------

    /**
     * Install the simulated clock (usually the worker's event queue).
     * Modules without their own notion of "now" (the UAT hardware)
     * timestamp their spans through this.
     */
    void setClock(std::function<sim::Tick()> clock)
    {
        clock_ = std::move(clock);
    }

    /** Current simulated time; 0 when no clock is installed. */
    sim::Tick now() const { return clock_ ? clock_() : 0; }

    // --- Recording --------------------------------------------------

    /** Open a span at @p start; close it later with end(). */
    SpanId begin(std::string_view name, Category cat, unsigned track,
                 sim::Tick start, SpanId parent = 0,
                 const SpanArgs &args = {});

    /** Close an open span at @p end_tick. */
    void end(SpanId id, sim::Tick end_tick);

    /** Record a complete span of @p dur ticks starting at @p start. */
    SpanId complete(std::string_view name, Category cat, unsigned track,
                    sim::Tick start, sim::Cycles dur, SpanId parent = 0,
                    const SpanArgs &args = {});

    // --- Metadata ---------------------------------------------------

    /** Attach a key/value pair exported in the trace header. */
    void setMeta(const std::string &key, const std::string &value);

    /** Name an export track ("core 3 (executor)"). */
    void setTrackName(unsigned track, const std::string &name);

    /**
     * Name an export process ("server 3"). The worker tracer keeps
     * everything in pid 0 ("jord worker"); fleet traces give each
     * server its own pid so Perfetto renders one labeled group per
     * server instead of bare numeric pids.
     */
    void setProcessName(unsigned pid, const std::string &name);

    /** Assign an export track to a process (default: pid 0). */
    void setTrackPid(unsigned track, unsigned pid);

    // --- Access -----------------------------------------------------

    /** Recorded spans, in record order. Chunked arena storage: hot
     * instrumentation sites never pay a stream-wide reallocation copy,
     * and clear() parks the chunks for the next run. */
    const sim::Arena<SpanRecord> &spans() const { return spans_; }
    const std::string &name(std::uint32_t id) const { return names_[id]; }
    const std::string &spanName(const SpanRecord &rec) const
    {
        return names_[rec.name];
    }
    const std::map<std::string, std::string> &meta() const
    {
        return meta_;
    }
    const std::map<unsigned, std::string> &trackNames() const
    {
        return trackNames_;
    }
    const std::map<unsigned, std::string> &processNames() const
    {
        return processNames_;
    }
    const std::map<unsigned, unsigned> &trackPids() const
    {
        return trackPids_;
    }
    /** The export pid of @p track (0 unless assigned). */
    unsigned trackPid(unsigned track) const;
    double freqGhz() const { return freqGhz_; }
    std::size_t numSpans() const { return spans_.size(); }

    /** Number of spans begun but never ended (dropped by exporters). */
    std::size_t numOpenSpans() const;

    /** Drop all recorded spans (metadata and track names stay). */
    void clear();

  private:
    double freqGhz_;
    std::function<sim::Tick()> clock_;
    sim::Arena<SpanRecord> spans_;
    std::vector<std::string> names_;
    std::unordered_map<std::string, std::uint32_t> nameIds_;
    std::map<std::string, std::string> meta_;
    std::map<unsigned, std::string> trackNames_;
    std::map<unsigned, std::string> processNames_;
    std::map<unsigned, unsigned> trackPids_;

    std::uint32_t intern(std::string_view name);
};

} // namespace jord::trace

#endif // JORD_TRACE_TRACE_HH
