/**
 * @file
 * Capacity planning: how many worker cores does a target SLO need?
 *
 * A downstream operator's question: "my social-network workload must
 * hold P99 <= 250 us — what throughput can machines of different sizes
 * sustain?" The example sweeps machine scales with the methodology of
 * §5 (SLO = 10x the minimal-load service time) and prints throughput
 * under SLO per configuration, including the per-socket-orchestrator
 * deployment the paper recommends for large machines (§6.3).
 */

#include <cstdio>

#include "workloads/sweep.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::SystemKind;

int
main()
{
    workloads::Workload w = workloads::makeSocial();

    struct Machine {
        const char *name;
        unsigned cores;
        unsigned sockets;
        unsigned orchs;
    };
    const Machine machines[] = {
        {"16-core / 1 socket", 16, 1, 2},
        {"32-core / 1 socket", 32, 1, 4},
        {"64-core / 1 socket", 64, 1, 8},
        {"128-core / 2 sockets", 128, 2, 8},
    };

    std::printf("capacity planning for %s (Jord, SLO = 10x min-load "
                "service)\n\n", w.name.c_str());
    std::printf("%-22s %14s %14s %12s\n", "machine", "SLO (us)",
                "tput (MRPS)", "KRPS/core");

    for (const Machine &m : machines) {
        workloads::SweepConfig cfg;
        cfg.requestsPerPoint = 8000;
        cfg.worker.machine = sim::MachineConfig::scaled(m.cores,
                                                        m.sockets);
        cfg.worker.numOrchestrators = m.orchs;

        double slo_us = workloads::measureSloUs(w, cfg);
        // Scale the load range with machine size.
        double hi = 0.05 * m.cores;
        auto loads = workloads::loadSeries(hi / 20, hi, 10);
        workloads::SweepResult res = workloads::sweepLoad(
            w, SystemKind::Jord, loads, slo_us, cfg);

        std::printf("%-22s %14.1f %14.2f %12.1f\n", m.name, slo_us,
                    res.throughputUnderSlo,
                    1000.0 * res.throughputUnderSlo / m.cores);
    }

    std::printf("\nThroughput scales close to linearly with cores as\n"
                "long as each socket keeps its own orchestrators; the\n"
                "per-core rate is the planning constant.\n");
    return 0;
}
