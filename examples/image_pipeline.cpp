/**
 * @file
 * A media-processing microservice: the kind of latency-critical nested
 * workflow the paper's introduction motivates.
 *
 * An upload request fans out:
 *
 *     HandleUpload
 *       |- Decode            (sync: must finish first)
 *       |- Resize x3         (async: thumbnail, preview, full)
 *       |- StoreMetadata     (async)
 *       `- [join] Encode     (runs after all children return)
 *
 * The example runs the same pipeline on Jord and on the enhanced
 * NightCore baseline and prints the latency difference that zero-copy
 * ArgBufs + nanosecond isolation buy over OS pipes.
 */

#include <cstdio>

#include "runtime/worker.hh"

using namespace jord;
using runtime::CallSpec;
using runtime::FunctionRegistry;
using runtime::FunctionSpec;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

FunctionRegistry
buildPipeline(runtime::FunctionId &entry)
{
    FunctionRegistry reg;
    auto fn = [&reg](const char *name, double us,
                     std::vector<CallSpec> calls = {}) {
        FunctionSpec spec;
        spec.name = name;
        spec.execMeanUs = us;
        spec.execCv = 0.25;
        spec.calls = std::move(calls);
        return reg.add(std::move(spec));
    };

    auto decode = fn("Decode", 2.0);
    auto resize = fn("Resize", 1.2);
    auto metadata = fn("StoreMetadata", 0.6);

    // Resized images travel by pointer in 2 KB ArgBufs: zero-copy on
    // Jord, two pipe copies each on NightCore.
    entry = fn("HandleUpload", 1.0,
               {CallSpec{decode, 2048, /*sync=*/true},
                CallSpec{resize, 2048, false},
                CallSpec{resize, 2048, false},
                CallSpec{resize, 2048, false},
                CallSpec{metadata, 512, false}});
    return reg;
}

} // namespace

int
main()
{
    runtime::FunctionId entry = 0;
    FunctionRegistry registry = buildPipeline(entry);

    std::printf("image pipeline: HandleUpload -> Decode(sync) + "
                "3x Resize + StoreMetadata (async)\n\n");
    std::printf("%-10s %10s %10s %10s %12s\n", "system", "mean(us)",
                "p99(us)", "MRPS", "overhead/inv");

    for (SystemKind system : {SystemKind::Jord, SystemKind::JordNI,
                              SystemKind::NightCore}) {
        WorkerConfig cfg;
        cfg.system = system;
        WorkerServer worker(cfg, registry);
        RunResult res = worker.run(0.8, 20000, {{entry, 1.0}});

        double overhead_ns =
            sim::cyclesToNs(static_cast<double>(
                res.totals.isolation + res.totals.pipe)) /
            static_cast<double>(res.invocations);
        std::printf("%-10s %10.2f %10.2f %10.2f %9.0f ns\n",
                    systemName(system), res.latencyUs.mean(),
                    res.latencyUs.p99(), res.achievedMrps,
                    overhead_ns);
    }

    std::printf("\nJord keeps the 6-invocation pipeline within a few "
                "microseconds;\nNightCore pays two pipe traversals per "
                "hop (§2.1).\n");
    return 0;
}
