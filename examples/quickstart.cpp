/**
 * @file
 * Quickstart: define two functions, deploy them on a Jord worker
 * server, and drive an open-loop load through the Fig. 4 invocation
 * flow.
 *
 *   $ ./quickstart
 *
 * A function is described by a FunctionSpec: its own execution time and
 * the nested calls it makes (jord::call synchronous semantics map to
 * CallSpec{.sync = true}, jord::async to .sync = false — Listing 1 of
 * the paper). The worker server wires up the full stack underneath:
 * UAT hardware (VLBs, VTW, VTD), PrivLib, the kernel model, and the
 * orchestrator/executor runtime.
 */

#include <cstdio>

#include "runtime/worker.hh"

using namespace jord;
using runtime::CallSpec;
using runtime::FunctionRegistry;
using runtime::FunctionSpec;
using runtime::RunResult;
using runtime::WorkerConfig;
using runtime::WorkerServer;

int
main()
{
    // 1. Describe the functions. "greet" computes for ~300 ns and then
    //    synchronously invokes "lookup" (~500 ns) with a 256-byte
    //    ArgBuf, exactly like the SrcFunc/Tgt pattern of Listing 1.
    FunctionRegistry registry;

    FunctionSpec lookup;
    lookup.name = "lookup";
    lookup.execMeanUs = 0.5;
    runtime::FunctionId lookup_id = registry.add(lookup);

    FunctionSpec greet;
    greet.name = "greet";
    greet.execMeanUs = 0.3;
    greet.calls = {CallSpec{lookup_id, 256, /*sync=*/true}};
    runtime::FunctionId greet_id = registry.add(greet);

    // 2. Assemble a worker server (Table 2 machine: 32 cores, 4 GHz).
    WorkerConfig cfg;
    WorkerServer worker(cfg, registry);

    // 3. Offer 1 million requests/s of "greet" for 20k requests.
    RunResult res = worker.run(/*mrps=*/1.0, /*num_requests=*/20000,
                               {{greet_id, 1.0}});

    std::printf("quickstart: %llu requests completed\n",
                static_cast<unsigned long long>(res.completedRequests));
    std::printf("  mean latency   %.2f us\n", res.latencyUs.mean());
    std::printf("  p99 latency    %.2f us\n", res.latencyUs.p99());
    std::printf("  invocations    %llu (1 greet + 1 lookup each)\n",
                static_cast<unsigned long long>(res.invocations));

    double per_inv = static_cast<double>(res.totals.isolation) /
                     static_cast<double>(res.invocations);
    std::printf("  isolation      %.0f ns per invocation "
                "(PD + VMA management)\n",
                sim::cyclesToNs(per_inv));
    std::printf("  dispatch       %.0f ns per request (JBSQ scan)\n",
                res.dispatchNs.mean());
    return 0;
}
