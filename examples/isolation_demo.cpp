/**
 * @file
 * Direct use of the in-process memory-isolation layer: PrivLib's
 * Table 1 API and the UAT hardware underneath, without the FaaS
 * runtime on top.
 *
 * The demo walks through the paper's §3.2 mechanism step by step:
 * create two protection domains, allocate private memory, share an
 * ArgBuf by moving its permission, watch the hardware fault when an
 * attacker forges addresses, and print the nanosecond-scale latencies
 * of each operation.
 */

#include <cstdio>

#include "mem/coherence.hh"
#include "noc/mesh.hh"
#include "os/kernel.hh"
#include "privlib/privlib.hh"
#include "uat/uat_system.hh"

using namespace jord;
using privlib::PrivLib;
using privlib::PrivResult;
using uat::Fault;
using uat::PdId;
using uat::Perm;

namespace {

void
show(const char *what, const PrivResult &res)
{
    std::printf("  %-34s %s (%.0f ns)\n", what,
                res.ok ? "ok" : uat::faultName(res.fault),
                sim::cyclesToNs(res.latency));
}

void
probe(uat::UatSystem &uat, unsigned core, const char *what,
      sim::Addr va, Perm need)
{
    uat::UatAccess acc = uat.dataAccess(core, va, need);
    std::printf("  %-34s %s\n", what,
                acc.ok() ? "ALLOWED" : uat::faultName(acc.fault));
}

} // namespace

int
main()
{
    // Assemble the stack by hand: mesh -> coherence -> VMA table ->
    // UAT hardware -> kernel -> PrivLib.
    sim::MachineConfig cfg = sim::MachineConfig::isca25Default();
    noc::Mesh mesh(cfg);
    mem::CoherenceEngine coherence(cfg, mesh);
    uat::VaEncoding encoding;
    uat::PlainListVmaTable table(encoding);
    uat::UatSystem uat(cfg, coherence, table);
    os::Kernel kernel(cfg);
    PrivLib privlib(cfg, coherence, uat, table, kernel);

    std::printf("== protection domains ==\n");
    PrivResult alice_pd = privlib.cget(0);
    PrivResult bob_pd = privlib.cget(1);
    show("cget (alice)", alice_pd);
    show("cget (bob)", bob_pd);
    PdId alice = static_cast<PdId>(alice_pd.value);
    PdId bob = static_cast<PdId>(bob_pd.value);

    std::printf("\n== private memory ==\n");
    PrivResult heap = privlib.mmapFor(0, alice, 8192, Perm::rw());
    show("mmap 8 KB into alice", heap);
    PrivResult argbuf = privlib.mmapFor(0, alice, 512, Perm::rw());
    show("mmap 512 B ArgBuf into alice", argbuf);

    // Enter alice's domain on core 0 and touch the heap.
    privlib.ccall(0, alice);
    probe(uat, 0, "alice reads her heap", heap.value, Perm::r());

    // Bob (core 1) forges alice's pointer: the VTW walks the VMA
    // table, finds no sub-array entry for bob's ucid, and faults.
    privlib.ccall(1, bob);
    probe(uat, 1, "bob forges alice's heap pointer", heap.value,
          Perm::r());

    std::printf("\n== zero-copy sharing via pmove ==\n");
    PrivResult mv = privlib.pmove(0, argbuf.value, bob, Perm::rw());
    show("alice pmoves ArgBuf to bob", mv);
    probe(uat, 1, "bob reads the ArgBuf", argbuf.value, Perm::r());
    probe(uat, 0, "alice reads it after the move", argbuf.value,
          Perm::r());

    std::printf("\n== privilege boundary ==\n");
    probe(uat, 1, "bob loads PrivLib's data VMA",
          privlib.privDataBase(), Perm::r());
    uat::UatAccess gate = uat.fetch(1, privlib.privCodeBase() + 8);
    std::printf("  %-34s %s\n", "bob jumps past the uatg gate",
                gate.ok() ? "ALLOWED" : uat::faultName(gate.fault));
    Fault csr = uat.writeCsr(1, uat::UatCsr::Ucid, alice);
    std::printf("  %-34s %s\n", "bob writes the ucid CSR",
                csr == Fault::None ? "ALLOWED" : uat::faultName(csr));

    std::printf("\n== teardown ==\n");
    // Bob owns the ArgBuf now and frees it from inside his domain;
    // alice trying the same on memory she no longer owns is rejected.
    PrivResult steal = privlib.munmap(0, argbuf.value, 512);
    std::printf("  %-34s %s\n", "alice munmaps bob's ArgBuf",
                steal.ok ? "ALLOWED" : uat::faultName(steal.fault));
    show("bob munmaps his ArgBuf", privlib.munmap(1, argbuf.value, 512));
    show("alice munmaps her heap", privlib.munmap(0, heap.value, 8192));

    // Both harts return to the trusted runtime domain, which retires
    // the PDs (cput refuses while a PD still holds permissions).
    privlib.cexit(0);
    privlib.cexit(1);
    show("cput (alice)", privlib.cput(0, alice));
    show("cput (bob)", privlib.cput(0, bob));
    return 0;
}
