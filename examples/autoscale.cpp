/**
 * @file
 * Transparent autoscaling: the "without managing servers" half of the
 * FaaS promise (§1), running the Hotel workload through a diurnal load
 * trace on a fleet of Jord worker servers.
 *
 * A reactive controller watches the fleet P99 against the SLO and
 * scales the active worker count between epochs; the developer only
 * ever wrote the functions.
 */

#include <cstdio>

#include "runtime/autoscaler.hh"
#include "workloads/sweep.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::AutoscaleConfig;
using runtime::Autoscaler;
using runtime::EpochStats;

int
main()
{
    workloads::Workload w = workloads::makeHotel();

    // Measure the SLO the paper's way: 10x minimal-load service time.
    workloads::SweepConfig slo_cfg;
    slo_cfg.requestsPerPoint = 4000;
    double slo_us = workloads::measureSloUs(w, slo_cfg);

    AutoscaleConfig cfg;
    cfg.sloUs = slo_us;
    cfg.minWorkers = 1;
    cfg.maxWorkers = 6;
    cfg.requestsPerEpoch = 5000;
    Autoscaler fleet(cfg, w.registry);

    // A diurnal trace in fleet-wide MRPS: night, morning ramp, noon
    // peak, evening decline.
    const std::vector<double> trace = {1.0, 2.0, 4.0,  8.0, 12.0, 16.0,
                                       18.0, 14.0, 8.0, 4.0, 2.0,  1.0};

    std::printf("autoscaling Hotel across up to %u workers "
                "(SLO = %.0f us P99)\n\n", cfg.maxWorkers, slo_us);
    std::printf("%5s %12s %8s %10s %10s %6s %7s\n", "epoch",
                "load(MRPS)", "workers", "p99(us)", "ach(MRPS)", "SLO?",
                "action");

    for (const EpochStats &e : fleet.runTrace(trace, w.mix)) {
        const char *action = e.scaleDecision > 0   ? "+1"
                             : e.scaleDecision < 0 ? "-1"
                                                   : "hold";
        std::printf("%5u %12.1f %8u %10.1f %10.2f %6s %7s\n", e.epoch,
                    e.offeredMrps, e.activeWorkers, e.p99Us,
                    e.achievedMrps, e.metSlo ? "yes" : "NO", action);
    }

    std::printf("\nThe fleet follows the load: workers join as the P99\n"
                "approaches the SLO and drain away overnight. Functions\n"
                "never changed; scaling is purely operational.\n");
    return 0;
}
