/**
 * @file
 * The paper's Listing 1, expressed with the AppBuilder API.
 *
 * The synthetic SrcFunc reads its inputs, populates two output
 * ArgBufs, invokes Tgt1 asynchronously and Tgt2 synchronously, waits
 * on the async cookie, allocates a scratch VMA, and produces the
 * output:
 *
 *     int SrcFunc(SrcReq *req) {
 *         jord::argBuf<Tgt1Req> r1;          // own VMA per ArgBuf
 *         jord::argBuf<Tgt2Req> r2;
 *         r1->in = pre(req->in1);            // compute
 *         r2->in = pre(req->in2);
 *         int c = jord::async(Tgt1, r1);     // async -> cookie
 *         if ((r = jord::call(Tgt2, r2)))    // sync, suspends
 *             return r;
 *         if ((r = jord::wait(c)))           // join the cookie
 *             return r;
 *         void *buf = mmap(0, 0x1000, ...);  // dynamic VMA
 *         req->out = post(buf, r1->out, r2->out);
 *         munmap(buf, 0x1000);
 *         return 0;
 *     }
 */

#include <cstdio>

#include "runtime/builder.hh"

using namespace jord;
using runtime::App;
using runtime::AppBuilder;
using runtime::RunResult;
using runtime::WorkerConfig;
using runtime::WorkerServer;

int
main()
{
    AppBuilder app;

    app.function("SrcFunc")
        .compute(0.25)          // pre(req->in1), pre(req->in2)
        .async("Tgt1", 256)     // int c = jord::async(Tgt1, r1)
        .call("Tgt2", 256)      // r = jord::call(Tgt2, r2)
        .compute(0.35)          // jord::wait(c); mmap; post(...); munmap
        .argBytes(512);
    app.function("Tgt1").compute(0.50);
    app.function("Tgt2").compute(0.70);
    app.entry("SrcFunc", 1.0);

    App built = app.build();
    WorkerConfig cfg;
    WorkerServer worker(cfg, built.registry);
    RunResult res = worker.run(0.5, 20000, built.mix);

    std::printf("Listing 1 on a %u-core Jord worker:\n",
                cfg.machine.numCores);
    std::printf("  SrcFunc service  %.2f us mean / %.2f us p99\n",
                res.perFunctionServiceUs[0].mean(),
                res.perFunctionServiceUs[0].p99());
    std::printf("  Tgt1 service     %.2f us mean\n",
                res.perFunctionServiceUs[1].mean());
    std::printf("  Tgt2 service     %.2f us mean\n",
                res.perFunctionServiceUs[2].mean());
    std::printf("  request latency  %.2f us mean / %.2f us p99\n",
                res.latencyUs.mean(), res.latencyUs.p99());
    std::printf("\nSrcFunc's service time covers its own ~0.6 us of\n"
                "compute plus the synchronous Tgt2 call and the join\n"
                "of the asynchronous Tgt1 — all inside one address\n"
                "space, with the ArgBufs never copied.\n");
    return 0;
}
