file(REMOVE_RECURSE
  "CMakeFiles/jordsim.dir/jordsim.cc.o"
  "CMakeFiles/jordsim.dir/jordsim.cc.o.d"
  "jordsim"
  "jordsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jordsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
