# Empty dependencies file for jordsim.
# This may be replaced when dependencies are built.
