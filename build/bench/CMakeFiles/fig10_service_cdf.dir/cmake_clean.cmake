file(REMOVE_RECURSE
  "CMakeFiles/fig10_service_cdf.dir/fig10_service_cdf.cc.o"
  "CMakeFiles/fig10_service_cdf.dir/fig10_service_cdf.cc.o.d"
  "fig10_service_cdf"
  "fig10_service_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_service_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
