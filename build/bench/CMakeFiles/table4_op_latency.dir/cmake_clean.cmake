file(REMOVE_RECURSE
  "CMakeFiles/table4_op_latency.dir/table4_op_latency.cc.o"
  "CMakeFiles/table4_op_latency.dir/table4_op_latency.cc.o.d"
  "table4_op_latency"
  "table4_op_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_op_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
