# Empty dependencies file for table4_op_latency.
# This may be replaced when dependencies are built.
