# Empty compiler generated dependencies file for fig13_btree.
# This may be replaced when dependencies are built.
