file(REMOVE_RECURSE
  "CMakeFiles/fig13_btree.dir/fig13_btree.cc.o"
  "CMakeFiles/fig13_btree.dir/fig13_btree.cc.o.d"
  "fig13_btree"
  "fig13_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
