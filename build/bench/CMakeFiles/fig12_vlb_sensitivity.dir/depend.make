# Empty dependencies file for fig12_vlb_sensitivity.
# This may be replaced when dependencies are built.
