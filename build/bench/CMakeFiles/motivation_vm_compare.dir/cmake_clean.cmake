file(REMOVE_RECURSE
  "CMakeFiles/motivation_vm_compare.dir/motivation_vm_compare.cc.o"
  "CMakeFiles/motivation_vm_compare.dir/motivation_vm_compare.cc.o.d"
  "motivation_vm_compare"
  "motivation_vm_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_vm_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
