# Empty compiler generated dependencies file for motivation_vm_compare.
# This may be replaced when dependencies are built.
