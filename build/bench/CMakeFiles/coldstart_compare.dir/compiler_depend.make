# Empty compiler generated dependencies file for coldstart_compare.
# This may be replaced when dependencies are built.
