file(REMOVE_RECURSE
  "CMakeFiles/coldstart_compare.dir/coldstart_compare.cc.o"
  "CMakeFiles/coldstart_compare.dir/coldstart_compare.cc.o.d"
  "coldstart_compare"
  "coldstart_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coldstart_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
