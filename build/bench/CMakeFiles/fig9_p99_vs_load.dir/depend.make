# Empty dependencies file for fig9_p99_vs_load.
# This may be replaced when dependencies are built.
