file(REMOVE_RECURSE
  "CMakeFiles/fig9_p99_vs_load.dir/fig9_p99_vs_load.cc.o"
  "CMakeFiles/fig9_p99_vs_load.dir/fig9_p99_vs_load.cc.o.d"
  "fig9_p99_vs_load"
  "fig9_p99_vs_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_p99_vs_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
