
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14_scalability.cc" "bench/CMakeFiles/fig14_scalability.dir/fig14_scalability.cc.o" "gcc" "bench/CMakeFiles/fig14_scalability.dir/fig14_scalability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/jord_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/jord_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/jord_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/jord_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/privlib/CMakeFiles/jord_privlib.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/jord_os.dir/DependInfo.cmake"
  "/root/repo/build/src/uat/CMakeFiles/jord_uat.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/jord_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/jord_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jord_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
