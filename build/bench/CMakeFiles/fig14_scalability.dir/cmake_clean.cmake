file(REMOVE_RECURSE
  "CMakeFiles/fig14_scalability.dir/fig14_scalability.cc.o"
  "CMakeFiles/fig14_scalability.dir/fig14_scalability.cc.o.d"
  "fig14_scalability"
  "fig14_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
