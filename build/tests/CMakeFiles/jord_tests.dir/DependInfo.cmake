
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_autoscaler.cc" "tests/CMakeFiles/jord_tests.dir/test_autoscaler.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_autoscaler.cc.o.d"
  "/root/repo/tests/test_builder.cc" "tests/CMakeFiles/jord_tests.dir/test_builder.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_builder.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/jord_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/jord_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_fuzz_isolation.cc" "tests/CMakeFiles/jord_tests.dir/test_fuzz_isolation.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_fuzz_isolation.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/jord_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_mesh.cc" "tests/CMakeFiles/jord_tests.dir/test_mesh.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_mesh.cc.o.d"
  "/root/repo/tests/test_misc_coverage.cc" "tests/CMakeFiles/jord_tests.dir/test_misc_coverage.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_misc_coverage.cc.o.d"
  "/root/repo/tests/test_os_baseline.cc" "tests/CMakeFiles/jord_tests.dir/test_os_baseline.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_os_baseline.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/jord_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_privlib.cc" "tests/CMakeFiles/jord_tests.dir/test_privlib.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_privlib.cc.o.d"
  "/root/repo/tests/test_rng_stats.cc" "tests/CMakeFiles/jord_tests.dir/test_rng_stats.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_rng_stats.cc.o.d"
  "/root/repo/tests/test_runtime.cc" "tests/CMakeFiles/jord_tests.dir/test_runtime.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_runtime.cc.o.d"
  "/root/repo/tests/test_security.cc" "tests/CMakeFiles/jord_tests.dir/test_security.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_security.cc.o.d"
  "/root/repo/tests/test_size_class.cc" "tests/CMakeFiles/jord_tests.dir/test_size_class.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_size_class.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/jord_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_tlb_vm.cc" "tests/CMakeFiles/jord_tests.dir/test_tlb_vm.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_tlb_vm.cc.o.d"
  "/root/repo/tests/test_uat_system.cc" "tests/CMakeFiles/jord_tests.dir/test_uat_system.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_uat_system.cc.o.d"
  "/root/repo/tests/test_vlb_vtd.cc" "tests/CMakeFiles/jord_tests.dir/test_vlb_vtd.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_vlb_vtd.cc.o.d"
  "/root/repo/tests/test_vma_table.cc" "tests/CMakeFiles/jord_tests.dir/test_vma_table.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_vma_table.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/jord_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/jord_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/jord_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/jord_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/jord_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/privlib/CMakeFiles/jord_privlib.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/jord_os.dir/DependInfo.cmake"
  "/root/repo/build/src/uat/CMakeFiles/jord_uat.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/jord_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/jord_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/jord_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jord_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
