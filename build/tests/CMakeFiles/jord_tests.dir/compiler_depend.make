# Empty compiler generated dependencies file for jord_tests.
# This may be replaced when dependencies are built.
