file(REMOVE_RECURSE
  "libjord_noc.a"
)
