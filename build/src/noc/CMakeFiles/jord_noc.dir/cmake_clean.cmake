file(REMOVE_RECURSE
  "CMakeFiles/jord_noc.dir/mesh.cc.o"
  "CMakeFiles/jord_noc.dir/mesh.cc.o.d"
  "libjord_noc.a"
  "libjord_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jord_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
