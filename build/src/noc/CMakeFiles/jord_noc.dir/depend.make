# Empty dependencies file for jord_noc.
# This may be replaced when dependencies are built.
