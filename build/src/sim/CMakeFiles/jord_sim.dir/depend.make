# Empty dependencies file for jord_sim.
# This may be replaced when dependencies are built.
