file(REMOVE_RECURSE
  "libjord_sim.a"
)
