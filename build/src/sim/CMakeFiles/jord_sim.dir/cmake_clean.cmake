file(REMOVE_RECURSE
  "CMakeFiles/jord_sim.dir/event_queue.cc.o"
  "CMakeFiles/jord_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/jord_sim.dir/logging.cc.o"
  "CMakeFiles/jord_sim.dir/logging.cc.o.d"
  "CMakeFiles/jord_sim.dir/machine.cc.o"
  "CMakeFiles/jord_sim.dir/machine.cc.o.d"
  "CMakeFiles/jord_sim.dir/rng.cc.o"
  "CMakeFiles/jord_sim.dir/rng.cc.o.d"
  "libjord_sim.a"
  "libjord_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jord_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
