
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uat/btree_table.cc" "src/uat/CMakeFiles/jord_uat.dir/btree_table.cc.o" "gcc" "src/uat/CMakeFiles/jord_uat.dir/btree_table.cc.o.d"
  "/root/repo/src/uat/size_class.cc" "src/uat/CMakeFiles/jord_uat.dir/size_class.cc.o" "gcc" "src/uat/CMakeFiles/jord_uat.dir/size_class.cc.o.d"
  "/root/repo/src/uat/uat_system.cc" "src/uat/CMakeFiles/jord_uat.dir/uat_system.cc.o" "gcc" "src/uat/CMakeFiles/jord_uat.dir/uat_system.cc.o.d"
  "/root/repo/src/uat/vlb.cc" "src/uat/CMakeFiles/jord_uat.dir/vlb.cc.o" "gcc" "src/uat/CMakeFiles/jord_uat.dir/vlb.cc.o.d"
  "/root/repo/src/uat/vma_table.cc" "src/uat/CMakeFiles/jord_uat.dir/vma_table.cc.o" "gcc" "src/uat/CMakeFiles/jord_uat.dir/vma_table.cc.o.d"
  "/root/repo/src/uat/vtd.cc" "src/uat/CMakeFiles/jord_uat.dir/vtd.cc.o" "gcc" "src/uat/CMakeFiles/jord_uat.dir/vtd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/jord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/jord_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/jord_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/jord_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
