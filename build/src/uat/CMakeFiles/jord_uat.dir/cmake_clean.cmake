file(REMOVE_RECURSE
  "CMakeFiles/jord_uat.dir/btree_table.cc.o"
  "CMakeFiles/jord_uat.dir/btree_table.cc.o.d"
  "CMakeFiles/jord_uat.dir/size_class.cc.o"
  "CMakeFiles/jord_uat.dir/size_class.cc.o.d"
  "CMakeFiles/jord_uat.dir/uat_system.cc.o"
  "CMakeFiles/jord_uat.dir/uat_system.cc.o.d"
  "CMakeFiles/jord_uat.dir/vlb.cc.o"
  "CMakeFiles/jord_uat.dir/vlb.cc.o.d"
  "CMakeFiles/jord_uat.dir/vma_table.cc.o"
  "CMakeFiles/jord_uat.dir/vma_table.cc.o.d"
  "CMakeFiles/jord_uat.dir/vtd.cc.o"
  "CMakeFiles/jord_uat.dir/vtd.cc.o.d"
  "libjord_uat.a"
  "libjord_uat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jord_uat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
