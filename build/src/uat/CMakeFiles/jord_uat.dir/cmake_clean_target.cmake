file(REMOVE_RECURSE
  "libjord_uat.a"
)
