# Empty dependencies file for jord_uat.
# This may be replaced when dependencies are built.
