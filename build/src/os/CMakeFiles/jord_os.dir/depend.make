# Empty dependencies file for jord_os.
# This may be replaced when dependencies are built.
