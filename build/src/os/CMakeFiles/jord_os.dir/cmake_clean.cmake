file(REMOVE_RECURSE
  "CMakeFiles/jord_os.dir/kernel.cc.o"
  "CMakeFiles/jord_os.dir/kernel.cc.o.d"
  "libjord_os.a"
  "libjord_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jord_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
