file(REMOVE_RECURSE
  "libjord_os.a"
)
