# Empty compiler generated dependencies file for jord_runtime.
# This may be replaced when dependencies are built.
