file(REMOVE_RECURSE
  "CMakeFiles/jord_runtime.dir/autoscaler.cc.o"
  "CMakeFiles/jord_runtime.dir/autoscaler.cc.o.d"
  "CMakeFiles/jord_runtime.dir/builder.cc.o"
  "CMakeFiles/jord_runtime.dir/builder.cc.o.d"
  "CMakeFiles/jord_runtime.dir/registry.cc.o"
  "CMakeFiles/jord_runtime.dir/registry.cc.o.d"
  "CMakeFiles/jord_runtime.dir/worker.cc.o"
  "CMakeFiles/jord_runtime.dir/worker.cc.o.d"
  "libjord_runtime.a"
  "libjord_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jord_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
