file(REMOVE_RECURSE
  "libjord_runtime.a"
)
