file(REMOVE_RECURSE
  "libjord_workloads.a"
)
