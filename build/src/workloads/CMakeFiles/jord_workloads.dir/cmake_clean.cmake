file(REMOVE_RECURSE
  "CMakeFiles/jord_workloads.dir/sweep.cc.o"
  "CMakeFiles/jord_workloads.dir/sweep.cc.o.d"
  "CMakeFiles/jord_workloads.dir/workloads.cc.o"
  "CMakeFiles/jord_workloads.dir/workloads.cc.o.d"
  "libjord_workloads.a"
  "libjord_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jord_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
