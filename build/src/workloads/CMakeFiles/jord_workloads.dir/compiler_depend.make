# Empty compiler generated dependencies file for jord_workloads.
# This may be replaced when dependencies are built.
