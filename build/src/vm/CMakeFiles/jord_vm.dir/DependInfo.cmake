
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/page_table.cc" "src/vm/CMakeFiles/jord_vm.dir/page_table.cc.o" "gcc" "src/vm/CMakeFiles/jord_vm.dir/page_table.cc.o.d"
  "/root/repo/src/vm/posix_vm.cc" "src/vm/CMakeFiles/jord_vm.dir/posix_vm.cc.o" "gcc" "src/vm/CMakeFiles/jord_vm.dir/posix_vm.cc.o.d"
  "/root/repo/src/vm/tlb.cc" "src/vm/CMakeFiles/jord_vm.dir/tlb.cc.o" "gcc" "src/vm/CMakeFiles/jord_vm.dir/tlb.cc.o.d"
  "/root/repo/src/vm/walker.cc" "src/vm/CMakeFiles/jord_vm.dir/walker.cc.o" "gcc" "src/vm/CMakeFiles/jord_vm.dir/walker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/jord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/jord_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/jord_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
