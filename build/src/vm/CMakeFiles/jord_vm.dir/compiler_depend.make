# Empty compiler generated dependencies file for jord_vm.
# This may be replaced when dependencies are built.
