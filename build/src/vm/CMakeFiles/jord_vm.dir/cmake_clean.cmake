file(REMOVE_RECURSE
  "CMakeFiles/jord_vm.dir/page_table.cc.o"
  "CMakeFiles/jord_vm.dir/page_table.cc.o.d"
  "CMakeFiles/jord_vm.dir/posix_vm.cc.o"
  "CMakeFiles/jord_vm.dir/posix_vm.cc.o.d"
  "CMakeFiles/jord_vm.dir/tlb.cc.o"
  "CMakeFiles/jord_vm.dir/tlb.cc.o.d"
  "CMakeFiles/jord_vm.dir/walker.cc.o"
  "CMakeFiles/jord_vm.dir/walker.cc.o.d"
  "libjord_vm.a"
  "libjord_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jord_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
