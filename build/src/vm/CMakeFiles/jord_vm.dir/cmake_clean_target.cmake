file(REMOVE_RECURSE
  "libjord_vm.a"
)
