file(REMOVE_RECURSE
  "libjord_mem.a"
)
