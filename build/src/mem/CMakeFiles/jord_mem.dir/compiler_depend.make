# Empty compiler generated dependencies file for jord_mem.
# This may be replaced when dependencies are built.
