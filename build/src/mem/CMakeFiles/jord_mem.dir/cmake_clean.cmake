file(REMOVE_RECURSE
  "CMakeFiles/jord_mem.dir/coherence.cc.o"
  "CMakeFiles/jord_mem.dir/coherence.cc.o.d"
  "libjord_mem.a"
  "libjord_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jord_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
