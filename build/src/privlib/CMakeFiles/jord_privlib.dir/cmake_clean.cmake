file(REMOVE_RECURSE
  "CMakeFiles/jord_privlib.dir/privlib.cc.o"
  "CMakeFiles/jord_privlib.dir/privlib.cc.o.d"
  "libjord_privlib.a"
  "libjord_privlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jord_privlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
