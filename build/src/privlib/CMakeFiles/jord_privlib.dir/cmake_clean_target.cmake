file(REMOVE_RECURSE
  "libjord_privlib.a"
)
