# Empty compiler generated dependencies file for jord_privlib.
# This may be replaced when dependencies are built.
