file(REMOVE_RECURSE
  "libjord_stats.a"
)
