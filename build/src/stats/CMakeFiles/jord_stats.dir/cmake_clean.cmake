file(REMOVE_RECURSE
  "CMakeFiles/jord_stats.dir/histogram.cc.o"
  "CMakeFiles/jord_stats.dir/histogram.cc.o.d"
  "CMakeFiles/jord_stats.dir/sampler.cc.o"
  "CMakeFiles/jord_stats.dir/sampler.cc.o.d"
  "CMakeFiles/jord_stats.dir/table.cc.o"
  "CMakeFiles/jord_stats.dir/table.cc.o.d"
  "libjord_stats.a"
  "libjord_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jord_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
