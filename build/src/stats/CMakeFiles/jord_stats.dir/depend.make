# Empty dependencies file for jord_stats.
# This may be replaced when dependencies are built.
