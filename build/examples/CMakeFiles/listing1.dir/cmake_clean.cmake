file(REMOVE_RECURSE
  "CMakeFiles/listing1.dir/listing1.cpp.o"
  "CMakeFiles/listing1.dir/listing1.cpp.o.d"
  "listing1"
  "listing1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listing1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
