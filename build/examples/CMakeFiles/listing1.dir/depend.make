# Empty dependencies file for listing1.
# This may be replaced when dependencies are built.
