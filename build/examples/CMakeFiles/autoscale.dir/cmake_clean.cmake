file(REMOVE_RECURSE
  "CMakeFiles/autoscale.dir/autoscale.cpp.o"
  "CMakeFiles/autoscale.dir/autoscale.cpp.o.d"
  "autoscale"
  "autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
