/**
 * @file
 * trace_report: offline analyzer for jordsim trace files.
 *
 * Reads a Chrome trace-event JSON file produced by
 * `jordsim --trace-out=FILE` and prints the Fig. 11-style per-function
 * service-time breakdown table (exec / isolation / dispatch / comm /
 * pipe / wait), recomputed purely from the exported spans:
 *
 *     jordsim --workload Hotel --trace-out trace.json
 *     trace_report trace.json
 *
 * Flags:
 *   --csv   machine-readable output instead of the table
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "sim/logging.hh"
#include "trace/breakdown.hh"
#include "trace/integrity.hh"

using namespace jord;

int
main(int argc, char **argv)
{
    bool csv = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) {
            csv = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::printf("usage: trace_report [--csv] TRACE.json\n");
            return 0;
        } else if (path.empty()) {
            path = argv[i];
        } else {
            sim::fatal("unexpected argument '%s'", argv[i]);
        }
    }
    if (path.empty())
        sim::fatal("usage: trace_report [--csv] TRACE.json");

    trace::requireCompleteTraceFile(path);
    std::ifstream in(path);
    if (!in)
        sim::fatal("cannot open '%s'", path.c_str());
    trace::BreakdownReport report = trace::analyzeChromeTrace(in);
    if (report.rows.empty()) {
        // A complete-but-empty trace (a run where nothing completed
        // inside the measured window) is valid — report it as such
        // instead of misdiagnosing the file.
        if (csv)
            std::printf("fn,invocations,service_us,exec_us,"
                        "isolation_us,dispatch_us,comm_us,pipe_us,"
                        "wait_us,overhead_pct\n");
        else
            std::printf("'%s' is a complete trace with no measured "
                        "invocation spans (empty run)\n",
                        path.c_str());
        return 0;
    }

    if (csv) {
        std::printf("fn,invocations,service_us,exec_us,isolation_us,"
                    "dispatch_us,comm_us,pipe_us,wait_us,overhead_pct\n");
        for (const trace::BreakdownRow &row : report.rows)
            std::printf("%s,%llu,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,"
                        "%.2f\n",
                        row.fn.c_str(),
                        static_cast<unsigned long long>(row.invocations),
                        row.serviceUs, row.execUs, row.isolationUs,
                        row.dispatchUs, row.commUs, row.pipeUs,
                        row.queueUs, row.overheadPct());
        return 0;
    }

    std::string header;
    for (const char *key : {"system", "workload", "mrps", "machine"}) {
        auto it = report.meta.find(key);
        if (it == report.meta.end())
            continue;
        if (!header.empty())
            header += ", ";
        header += std::string(key) + "=" + it->second;
    }
    if (!header.empty())
        std::printf("%s\n", header.c_str());
    std::fputs(trace::renderBreakdown(report).c_str(), stdout);
    return 0;
}
