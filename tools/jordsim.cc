/**
 * @file
 * jordsim: command-line driver for one-off simulation runs.
 *
 * Runs a (workload, system, load) combination on a configurable machine
 * and prints either a human-readable report or CSV for scripting:
 *
 *     jordsim --workload Hipster --system Jord --mrps 4.0
 *     jordsim --workload Media --system NightCore --requests 50000 --csv
 *     jordsim --workload Hotel --sweep 0.5:9:12   # load sweep + SLO knee
 *     jordsim --workload Hotel --fault-plan "crash=0.01" \
 *             --timeout-us 500 --max-retries 2 --shed-cap 256
 *
 * Run `jordsim --help` for the full flag reference.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hh"
#include "cluster/cluster.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"
#include "par/par.hh"
#include "prof/pmu.hh"
#include "prof/profile_json.hh"
#include "prof/profiler.hh"
#include "sim/logging.hh"
#include "trace/export.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"
#include "workloads/sweep.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

SystemKind
parseSystem(const std::string &name)
{
    if (name == "Jord")
        return SystemKind::Jord;
    if (name == "JordNI")
        return SystemKind::JordNI;
    if (name == "JordBT")
        return SystemKind::JordBT;
    if (name == "NightCore")
        return SystemKind::NightCore;
    sim::fatal("unknown system '%s' (Jord|JordNI|JordBT|NightCore)",
               name.c_str());
}

struct Options {
    std::string workload = "Hipster";
    std::string system = "Jord";
    double mrps = 1.0;
    std::uint64_t requests = 20000;
    unsigned cores = 32;
    unsigned sockets = 1;
    unsigned orchestrators = 4;
    unsigned domains = 1;
    std::uint64_t seed = 42;
    bool csv = false;
    bool sweep = false;
    double sweepLo = 0, sweepHi = 0;
    unsigned sweepN = 0;
    bool seedSweep = false;
    std::uint64_t seedLo = 0, seedHi = 0;
    unsigned cluster = 0;
    std::string lb = "random2";
    std::string traffic = "constant";
    double durationMs = 20.0;
    double sloUs = 0;
    bool autoscale = false;
    unsigned autoscaleLo = 0, autoscaleHi = 0;
    double hedgeUs = 0;
    bool outlierEject = false;
    double ejectMult = 3.0;
    double retryBudget = 0;
    bool healthCheck = false;
    bool breaker = false;
    double obsIntervalMs = 0;
    std::string obsOut;
    std::string obsTraceOut;
    double obsSloTarget = 0.99;
    double obsBurnThreshold = 2.0;
    /** Explicitly-given flags that only make sense in one mode; the
     * other mode rejects them instead of silently ignoring them. */
    std::vector<std::string> workerOnlyFlags;
    std::vector<std::string> clusterOnlyFlags;
    unsigned jobs = par::defaultJobs();
    std::string jsonOut;
    std::string traceOut;
    std::string metricsOut;
    std::string profOut;
    std::string pmuOut;
    double profHz = 0;
    bool profHzSet = false;
    std::string faultPlan;
    double timeoutUs = 0;
    unsigned maxRetries = 0;
    double retryBackoffUs = 20.0;
    std::size_t shedCap = 0;
    check::CheckConfig check;
};

void
printUsage()
{
    std::printf(
        "usage: jordsim [flags]\n"
        "\n"
        "Run one (workload, system, load) combination of the Jord\n"
        "simulation, or a load sweep, and report latency/throughput.\n"
        "\n"
        "run selection:\n"
        "  --workload NAME     Hipster | Hotel | Media | Social"
        "  (default Hipster)\n"
        "  --system NAME       Jord | JordNI | JordBT | NightCore"
        " (default Jord)\n"
        "  --mrps X            offered load in MRPS"
        "            (default 1.0)\n"
        "  --requests N        external requests to generate"
        "   (default 20000)\n"
        "  --sweep LO:HI:N     sweep N loads in [LO, HI] and report\n"
        "                      the SLO knee instead of a single run\n"
        "  --seed-sweep A..B   run once per seed in [A, B] and emit a\n"
        "                      merged per-seed report (CSV with --csv,\n"
        "                      flat JSON with --json)\n"
        "\n"
        "fleet simulation (src/cluster):\n"
        "  --cluster N         simulate N worker servers behind a\n"
        "                      front-end LB instead of a single run.\n"
        "                      Each server is calibrated by running\n"
        "                      the real simulator (--requests sets the\n"
        "                      calibration length); --mrps is the\n"
        "                      fleet-wide offered load. In this mode\n"
        "                      --shed-cap is the per-server\n"
        "                      outstanding cap (admission control)\n"
        "                      and --metrics-out writes per-server\n"
        "                      cluster.server<k>.* metrics\n"
        "  --lb POLICY         random | random2 | jsq | rr | affinity\n"
        "                      (default random2)\n"
        "  --traffic SHAPE     constant | diurnal | flash | mix, with\n"
        "                      optional :key=value,... overrides (amp,\n"
        "                      period_ms, factor, start, end), e.g.\n"
        "                      flash:factor=4,start=0.4,end=0.6\n"
        "  --duration-ms X     simulated traffic duration (default 20)\n"
        "  --slo-us X          fleet SLO; 0 derives 10x the calibrated\n"
        "                      low-load mean latency (default 0)\n"
        "  --autoscale A..B    enable the autoscaling controller with\n"
        "                      A..B active servers (initial count is\n"
        "                      --cluster N clamped into [A, B])\n"
        "\n"
        "fleet fault tolerance (--cluster only; all off by default):\n"
        "  --fault-plan SPEC   in fleet mode the plan's 'cluster:'\n"
        "                      clause injects fleet chaos: crash\n"
        "                      (per-server hazard probability per\n"
        "                      window_ms window), restart_ms +\n"
        "                      recover_us (Groundhog-style restart\n"
        "                      cost per re-warmed slot), gray / grayx\n"
        "                      (slow-but-alive windows), drop / delay\n"
        "                      / delay_us (LB<->server link faults),\n"
        "                      gray_server=K (one scripted gray\n"
        "                      server), crash_at_ms + crash_frac (a\n"
        "                      scripted mass crash). e.g.\n"
        "                      \"cluster:crash=0.02,gray=0.05,grayx=4\"\n"
        "  --hedge-us X        hedge a still-outstanding request to a\n"
        "                      second server after X us; first\n"
        "                      completion wins, the loser is cancelled\n"
        "  --outlier-eject[=M] eject servers whose interval P99\n"
        "                      exceeds M x the fleet median (default\n"
        "                      M=3), with probation re-admission\n"
        "  --retry-budget F    retry failed requests while total\n"
        "                      retries stay under F x generated\n"
        "                      primaries (storm-proof retry cap)\n"
        "  --health-check      heartbeat failure detector: stop\n"
        "                      routing to a server after 3 missed\n"
        "                      beats, re-admit after restart\n"
        "  --breaker           per-(server,tenant) circuit breakers\n"
        "                      feeding the shed path\n"
        "\n"
        "fleet observability (--cluster only; all off by default,\n"
        "and off leaves every other output byte-identical):\n"
        "  --obs-interval-ms X enable windowed telemetry, the SLO\n"
        "                      burn-rate monitor and the incident log\n"
        "                      with X ms windows\n"
        "  --obs-out BASE      write BASE.windows.csv (per-server,\n"
        "                      per-tenant interval telemetry) and\n"
        "                      BASE.events.csv (ground-truth chaos\n"
        "                      incidents + SLO alerts) for jordmon;\n"
        "                      requires --obs-interval-ms\n"
        "  --obs-trace-out FILE  write the fleet request trace\n"
        "                      (Chrome trace-event JSON, one named\n"
        "                      track per server) \n"
        "  --obs-slo-target F  SLO objective: target fraction of\n"
        "                      requests meeting their tenant SLO; the\n"
        "                      error budget is 1-F (default 0.99)\n"
        "  --obs-burn-threshold X  alert when both the fast (5-window)\n"
        "                      and slow (60-window) burn rates exceed\n"
        "                      X times the error budget (default 2)\n"
        "\n"
        "host parallelism:\n"
        "  --jobs N            fan independent runs (sweep points,\n"
        "                      seeds) across N host threads; 0 = one\n"
        "                      per hardware thread. Output is byte-\n"
        "                      identical to --jobs 1. (default:\n"
        "                      $JORD_JOBS or 1)\n"
        "\n"
        "machine:\n"
        "  --cores N           total cores"
        "                     (default 32)\n"
        "  --sockets N         socket count"
        "                    (default 1)\n"
        "  --orchestrators N   orchestrator threads"
        "            (default 4)\n"
        "  --domains N         partition the event queue into N\n"
        "                      per-domain sub-queues (worker: by core;\n"
        "                      --cluster: by server). Output is byte-\n"
        "                      identical at any N. (default 1)\n"
        "  --seed N            RNG seed"
        "                        (default 42)\n"
        "\n"
        "failure handling (all off by default):\n"
        "  --fault-plan SPEC   deterministic fault-injection plan.\n"
        "                      SPEC is ';'-separated clauses of\n"
        "                      comma-separated key=value pairs; the\n"
        "                      first clause applies to every function,\n"
        "                      later 'Name:' clauses override one\n"
        "                      function. Keys: crash (probability),\n"
        "                      perm (ArgBuf permission violation),\n"
        "                      spike (probability) and spikex\n"
        "                      (multiplier), drop (NightCore pipe\n"
        "                      drop), seed (injection seed; global\n"
        "                      clause only, default: worker seed).\n"
        "                      e.g. \"crash=0.01;ReadPage:crash=0.2\"\n"
        "  --timeout-us X      per-request deadline in us (0 = none)\n"
        "  --max-retries N     retry budget per external request\n"
        "  --retry-backoff-us X  base retry delay, doubled per attempt\n"
        "                      (default 20)\n"
        "  --shed-cap N        shed external arrivals when an\n"
        "                      orchestrator's external queue holds N\n"
        "                      requests (0 = never shed)\n"
        "\n"
        "Worker-only flags (--timeout-us, --max-retries,\n"
        "--retry-backoff-us) are rejected with --cluster, and\n"
        "fleet-only flags (--lb, --traffic, --duration-ms, --slo-us,\n"
        "--autoscale, --hedge-us, --outlier-eject, --retry-budget,\n"
        "--health-check, --breaker, --obs-interval-ms, --obs-out,\n"
        "--obs-trace-out, --obs-slo-target, --obs-burn-threshold) are\n"
        "rejected without it.\n"
        "\n"
        "checking (JordSan, all off by default):\n"
        "  --check[=FAMILIES]  run with the isolation sanitizer on.\n"
        "                      FAMILIES is a comma-separated subset of\n"
        "                      access,vlb,difftable (default: all).\n"
        "                      Violations are reported on stderr and\n"
        "                      make jordsim exit nonzero. With --check\n"
        "                      off, output is byte-identical to a\n"
        "                      build without the checker.\n"
        "\n"
        "profiling (off by default; profiling off leaves every other\n"
        "output byte-identical):\n"
        "  --prof-out BASE     enable the PMU and sampling profiler and\n"
        "                      write BASE.folded (flamegraph folded\n"
        "                      stacks), BASE.timeseries.csv (sampled\n"
        "                      gauges), BASE.topdown.csv (per-core\n"
        "                      cycle attribution) and BASE.json (flat\n"
        "                      profile summary for jordprof)\n"
        "  --prof-hz HZ        sample rate in samples per simulated\n"
        "                      second (default 100000 when --prof-out\n"
        "                      is given; 0 disables profiling even if\n"
        "                      --prof-out/--pmu-out are present; rates\n"
        "                      above one sample per core cycle exceed\n"
        "                      the event-queue horizon and are\n"
        "                      rejected)\n"
        "  --pmu-out FILE      enable the PMU and write its per-core\n"
        "                      counters as CSV\n"
        "\n"
        "output:\n"
        "  --csv               machine-readable output\n"
        "  --json FILE         write a flat JSON summary (seed-sweep\n"
        "                      mode only)\n"
        "  --trace-out FILE    write a Chrome trace-event / Perfetto\n"
        "                      JSON trace of the run\n"
        "  --metrics-out FILE  write the metrics registry as CSV\n"
        "\n"
        "Value-taking flags also accept the --flag=value form.\n");
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Every value-taking flag accepts both "--flag value" and
        // "--flag=value" (the fault-plan spec itself contains '=', so
        // only the first '=' splits).
        std::string flag = arg;
        std::string inline_val;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            if (std::size_t eq = arg.find('=');
                eq != std::string::npos) {
                flag = arg.substr(0, eq);
                inline_val = arg.substr(eq + 1);
                has_inline = true;
                if (inline_val.empty())
                    sim::fatal("%s requires a value", flag.c_str());
            }
        }
        auto value = [&]() -> std::string {
            if (has_inline)
                return inline_val;
            if (i + 1 >= argc)
                sim::fatal("%s requires a value", flag.c_str());
            return argv[++i];
        };
        if (flag == "--workload")
            opt.workload = value();
        else if (flag == "--system")
            opt.system = value();
        else if (flag == "--mrps")
            opt.mrps = std::strtod(value().c_str(), nullptr);
        else if (flag == "--requests")
            opt.requests =
                std::strtoull(value().c_str(), nullptr, 10);
        else if (flag == "--cores")
            opt.cores = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (flag == "--sockets")
            opt.sockets = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (flag == "--orchestrators")
            opt.orchestrators = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (flag == "--domains")
            opt.domains = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (flag == "--seed")
            opt.seed = std::strtoull(value().c_str(), nullptr, 10);
        else if (flag == "--trace-out")
            opt.traceOut = value();
        else if (flag == "--metrics-out")
            opt.metricsOut = value();
        else if (flag == "--prof-out")
            opt.profOut = value();
        else if (flag == "--pmu-out")
            opt.pmuOut = value();
        else if (flag == "--prof-hz") {
            opt.profHz = std::strtod(value().c_str(), nullptr);
            opt.profHzSet = true;
            if (opt.profHz < 0)
                sim::fatal("--prof-hz expects a rate >= 0, got %g",
                           opt.profHz);
        }
        else if (flag == "--fault-plan")
            opt.faultPlan = value();
        else if (flag == "--timeout-us") {
            opt.timeoutUs = std::strtod(value().c_str(), nullptr);
            opt.workerOnlyFlags.push_back(flag);
        } else if (flag == "--max-retries") {
            opt.maxRetries = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
            opt.workerOnlyFlags.push_back(flag);
        } else if (flag == "--retry-backoff-us") {
            opt.retryBackoffUs = std::strtod(value().c_str(), nullptr);
            opt.workerOnlyFlags.push_back(flag);
        } else if (flag == "--shed-cap")
            opt.shedCap = static_cast<std::size_t>(
                std::strtoull(value().c_str(), nullptr, 10));
        else if (flag == "--check") {
            // Bare --check enables every family; --check=a,b a subset.
            std::string spec = has_inline ? inline_val : "";
            if (!check::CheckConfig::parse(spec, opt.check))
                sim::fatal("--check expects a comma-separated subset "
                           "of access,vlb,difftable, got '%s'",
                           spec.c_str());
        } else if (flag == "--csv")
            opt.csv = true;
        else if (flag == "--json")
            opt.jsonOut = value();
        else if (flag == "--jobs")
            opt.jobs = par::resolveJobs(static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10)));
        else if (flag == "--sweep") {
            std::string spec = value();
            if (std::sscanf(spec.c_str(), "%lf:%lf:%u", &opt.sweepLo,
                            &opt.sweepHi, &opt.sweepN) != 3)
                sim::fatal("--sweep expects LO:HI:N, got '%s'",
                           spec.c_str());
            opt.sweep = true;
        } else if (flag == "--cluster")
            opt.cluster = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (flag == "--lb") {
            opt.lb = value();
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--traffic") {
            opt.traffic = value();
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--duration-ms") {
            opt.durationMs = std::strtod(value().c_str(), nullptr);
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--slo-us") {
            opt.sloUs = std::strtod(value().c_str(), nullptr);
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--autoscale") {
            std::string spec = value();
            unsigned long lo = 0, hi = 0;
            if (std::sscanf(spec.c_str(), "%lu..%lu", &lo, &hi) != 2 ||
                lo == 0 || hi < lo)
                sim::fatal("--autoscale expects A..B with 1 <= A <= B, "
                           "got '%s'",
                           spec.c_str());
            opt.autoscale = true;
            opt.autoscaleLo = static_cast<unsigned>(lo);
            opt.autoscaleHi = static_cast<unsigned>(hi);
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--hedge-us") {
            opt.hedgeUs = std::strtod(value().c_str(), nullptr);
            if (opt.hedgeUs < 0)
                sim::fatal("--hedge-us expects a delay >= 0, got %g",
                           opt.hedgeUs);
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--outlier-eject") {
            // Bare --outlier-eject uses the default multiple;
            // --outlier-eject=MULT overrides it.
            opt.outlierEject = true;
            if (has_inline) {
                opt.ejectMult =
                    std::strtod(inline_val.c_str(), nullptr);
                if (opt.ejectMult <= 1.0)
                    sim::fatal("--outlier-eject expects a P99 multiple "
                               "> 1, got '%s'",
                               inline_val.c_str());
            }
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--retry-budget") {
            opt.retryBudget = std::strtod(value().c_str(), nullptr);
            if (opt.retryBudget < 0)
                sim::fatal("--retry-budget expects a fraction >= 0, "
                           "got %g",
                           opt.retryBudget);
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--health-check") {
            opt.healthCheck = true;
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--breaker") {
            opt.breaker = true;
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--obs-interval-ms") {
            opt.obsIntervalMs = std::strtod(value().c_str(), nullptr);
            if (opt.obsIntervalMs <= 0)
                sim::fatal("--obs-interval-ms expects a window > 0, "
                           "got %g",
                           opt.obsIntervalMs);
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--obs-out") {
            opt.obsOut = value();
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--obs-trace-out") {
            opt.obsTraceOut = value();
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--obs-slo-target") {
            opt.obsSloTarget = std::strtod(value().c_str(), nullptr);
            if (opt.obsSloTarget <= 0 || opt.obsSloTarget >= 1)
                sim::fatal("--obs-slo-target expects a fraction in "
                           "(0, 1), got %g",
                           opt.obsSloTarget);
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--obs-burn-threshold") {
            opt.obsBurnThreshold =
                std::strtod(value().c_str(), nullptr);
            if (opt.obsBurnThreshold <= 0)
                sim::fatal("--obs-burn-threshold expects a multiple "
                           "> 0, got %g",
                           opt.obsBurnThreshold);
            opt.clusterOnlyFlags.push_back(flag);
        } else if (flag == "--seed-sweep") {
            std::string spec = value();
            unsigned long long lo = 0, hi = 0;
            if (std::sscanf(spec.c_str(), "%llu..%llu", &lo, &hi) != 2 ||
                hi < lo)
                sim::fatal("--seed-sweep expects A..B with A <= B, "
                           "got '%s'",
                           spec.c_str());
            opt.seedLo = lo;
            opt.seedHi = hi;
            opt.seedSweep = true;
        } else if (flag == "--help" || flag == "-h") {
            printUsage();
            std::exit(0);
        } else {
            sim::fatal("unknown flag '%s' (try --help)", arg.c_str());
        }
    }
    return opt;
}

WorkerConfig
makeWorkerConfig(const Options &opt)
{
    WorkerConfig cfg;
    if (opt.cores != 32 || opt.sockets != 1)
        cfg.machine = sim::MachineConfig::scaled(opt.cores, opt.sockets);
    cfg.system = parseSystem(opt.system);
    cfg.numOrchestrators = opt.orchestrators;
    cfg.numDomains = opt.domains;
    cfg.seed = opt.seed;
    if (!opt.faultPlan.empty())
        cfg.faultPlan = fault::FaultPlan::parse(opt.faultPlan);
    cfg.timeoutUs = opt.timeoutUs;
    cfg.maxRetries = opt.maxRetries;
    cfg.retryBackoffUs = opt.retryBackoffUs;
    cfg.shedCap = opt.shedCap;
    cfg.check = opt.check;
    return cfg;
}

int
runOnce(const Options &opt)
{
    workloads::Workload w = workloads::makeByName(opt.workload);
    WorkerConfig cfg = makeWorkerConfig(opt);
    WorkerServer worker(cfg, w.registry);

    trace::Tracer tracer(cfg.machine.freqGhz);
    trace::MetricsRegistry registry;
    if (!opt.traceOut.empty()) {
        worker.setTracer(&tracer);
        char mrps[32];
        std::snprintf(mrps, sizeof(mrps), "%.4f", opt.mrps);
        tracer.setMeta("workload", opt.workload);
        tracer.setMeta("mrps", mrps);
        tracer.setMeta("machine",
                       std::to_string(cfg.machine.numCores) + "c/" +
                           std::to_string(cfg.machine.numSockets) + "s");
    }
    if (!opt.metricsOut.empty())
        worker.attachMetrics(registry);

    // Profiling: the PMU attaches whenever a profile output was
    // requested, the sampling profiler only for --prof-out.  An
    // explicit --prof-hz 0 turns profiling off entirely: nothing is
    // attached, so the run is byte-identical to an unprofiled one.
    bool want_prof = !opt.profOut.empty() || !opt.pmuOut.empty();
    double hz = opt.profHzSet ? opt.profHz : 100000.0;
    double horizon_hz = cfg.machine.freqGhz * 1e9;
    if (hz > horizon_hz)
        sim::fatal("--prof-hz %g exceeds the event-queue horizon: a "
                   "%g GHz clock allows at most %g samples per "
                   "simulated second",
                   hz, cfg.machine.freqGhz, horizon_hz);
    if (opt.profHzSet && hz == 0 && want_prof) {
        std::fprintf(stderr, "profiling disabled by --prof-hz 0; "
                             "skipping profile outputs\n");
        want_prof = false;
    }
    std::optional<prof::Pmu> pmu;
    std::optional<prof::Profiler> profiler;
    if (want_prof) {
        pmu.emplace(cfg.machine.numCores);
        worker.setPmu(&*pmu);
        if (!opt.profOut.empty()) {
            prof::Profiler::Config pcfg;
            pcfg.hz = hz;
            pcfg.freqGhz = cfg.machine.freqGhz;
            profiler.emplace(worker.eventQueue(), worker, pcfg);
            worker.setProfiler(&*profiler);
        }
    }

    RunResult res = worker.run(opt.mrps, opt.requests, w.mix);

    auto openOut = [](const std::string &path) {
        std::ofstream out(path);
        if (!out)
            sim::fatal("cannot open '%s'", path.c_str());
        return out;
    };
    if (profiler) {
        {
            auto out = openOut(opt.profOut + ".folded");
            profiler->writeFolded(out);
        }
        {
            auto out = openOut(opt.profOut + ".timeseries.csv");
            profiler->writeTimeSeriesCsv(out);
        }
        {
            auto out = openOut(opt.profOut + ".topdown.csv");
            pmu->writeTopDownCsv(out);
        }
        std::map<std::string, double> summary;
        summary["achieved_mrps"] = res.achievedMrps;
        summary["mean_us"] = res.latencyUs.mean();
        summary["p50_us"] = res.latencyUs.p50();
        summary["p99_us"] = res.latencyUs.p99();
        summary["samples"] = static_cast<double>(profiler->samples());
        summary["total_ticks"] =
            static_cast<double>(pmu->totalTicks());
        for (unsigned c = 0; c < prof::Pmu::kNumCounters; ++c) {
            auto counter = static_cast<prof::PmuCounter>(c);
            summary[std::string("counter.") +
                    prof::pmuCounterName(counter)] =
                static_cast<double>(pmu->totalCounter(counter));
        }
        for (unsigned b = 0; b < prof::Pmu::kNumBuckets; ++b) {
            auto bucket = static_cast<prof::PmuBucket>(b);
            std::uint64_t total = 0;
            for (unsigned core = 0; core < pmu->numCores(); ++core)
                total += pmu->bucket(core, bucket);
            summary[std::string("topdown.") +
                    prof::pmuBucketName(bucket)] =
                static_cast<double>(total);
        }
        auto out = openOut(opt.profOut + ".json");
        prof::writeFlatJson(out, summary);
        std::fprintf(stderr,
                     "wrote %llu profile samples to %s.{folded,"
                     "timeseries.csv,topdown.csv,json}\n",
                     static_cast<unsigned long long>(
                         profiler->samples()),
                     opt.profOut.c_str());
    }
    if (pmu && !opt.pmuOut.empty()) {
        auto out = openOut(opt.pmuOut);
        pmu->writeCountersCsv(out);
        std::fprintf(stderr, "wrote PMU counters to %s\n",
                     opt.pmuOut.c_str());
    }

    if (!opt.traceOut.empty()) {
        std::ofstream out(opt.traceOut);
        if (!out)
            sim::fatal("cannot open '%s'", opt.traceOut.c_str());
        trace::writeChromeTrace(tracer, out);
        std::fprintf(stderr, "wrote %zu spans to %s\n",
                     tracer.numSpans(), opt.traceOut.c_str());
    }
    if (!opt.metricsOut.empty()) {
        std::ofstream out(opt.metricsOut);
        if (!out)
            sim::fatal("cannot open '%s'", opt.metricsOut.c_str());
        registry.writeCsv(out);
        std::fprintf(stderr, "wrote %zu metrics to %s\n",
                     registry.size(), opt.metricsOut.c_str());
    }

    int rc = 0;
    if (check::Checker *checker = worker.checker()) {
        checker->report(std::cerr);
        if (checker->totalViolations())
            rc = 2;
    }

    if (opt.csv) {
        std::printf("workload,system,offered_mrps,achieved_mrps,"
                    "mean_us,p50_us,p99_us,invocations,utilization,"
                    "completed,failed,timedout,shed,retries\n");
        std::printf("%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%llu,%.4f,"
                    "%llu,%llu,%llu,%llu,%llu\n",
                    opt.workload.c_str(), opt.system.c_str(), opt.mrps,
                    res.achievedMrps, res.latencyUs.mean(),
                    res.latencyUs.p50(), res.latencyUs.p99(),
                    static_cast<unsigned long long>(res.invocations),
                    res.executorUtilization,
                    static_cast<unsigned long long>(
                        res.completedRequests),
                    static_cast<unsigned long long>(res.failedRequests),
                    static_cast<unsigned long long>(
                        res.timedOutRequests),
                    static_cast<unsigned long long>(res.shedRequests),
                    static_cast<unsigned long long>(res.retries));
        return rc;
    }

    std::printf("%s on %s @ %.2f MRPS offered\n", opt.workload.c_str(),
                opt.system.c_str(), opt.mrps);
    std::printf("  achieved     %.2f MRPS\n", res.achievedMrps);
    std::printf("  latency      %.2f us mean, %.2f us p50, "
                "%.2f us p99\n",
                res.latencyUs.mean(), res.latencyUs.p50(),
                res.latencyUs.p99());
    std::printf("  service      %.2f us mean per invocation\n",
                res.serviceUs.mean());
    std::printf("  invocations  %llu (%.2f per request)\n",
                static_cast<unsigned long long>(res.invocations),
                static_cast<double>(res.invocations) /
                    static_cast<double>(
                        std::max<std::uint64_t>(1,
                                                res.completedRequests)));
    std::printf("  outcomes     %llu completed, %llu failed, "
                "%llu timed out, %llu shed (%llu retries)\n",
                static_cast<unsigned long long>(res.completedRequests),
                static_cast<unsigned long long>(res.failedRequests),
                static_cast<unsigned long long>(res.timedOutRequests),
                static_cast<unsigned long long>(res.shedRequests),
                static_cast<unsigned long long>(res.retries));
    if (res.faultsInjected || res.abortedInvocations)
        std::printf("  faults       %llu injected, %llu invocations "
                    "aborted and reclaimed\n",
                    static_cast<unsigned long long>(res.faultsInjected),
                    static_cast<unsigned long long>(
                        res.abortedInvocations));
    std::printf("  utilization  %.0f%% of %u executors\n",
                100.0 * res.executorUtilization, worker.numExecutors());
    double ghz = worker.config().machine.freqGhz;
    std::printf("  overheads    isolation %.0f ns/inv, dispatch %.0f "
                "ns/req, pipes %.0f ns/inv\n",
                sim::cyclesToNs(res.totals.isolation, ghz) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, res.invocations)),
                res.dispatchNs.mean(),
                sim::cyclesToNs(res.totals.pipe, ghz) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, res.invocations)));
    return rc;
}

int
runCluster(const Options &opt, par::ThreadPool *pool)
{
    if (!opt.traceOut.empty() || !opt.profOut.empty() ||
        !opt.pmuOut.empty())
        sim::fatal("--cluster does not support --trace-out, "
                   "--prof-out or --pmu-out (the fleet trace is "
                   "--obs-trace-out)");
    if (opt.check.any())
        sim::fatal("--cluster does not support --check");
    if (!opt.obsOut.empty() && opt.obsIntervalMs <= 0)
        sim::fatal("--obs-out requires --obs-interval-ms (the "
                   "windows/events artifacts are interval streams)");
    if (opt.obsIntervalMs <= 0 &&
        (opt.obsSloTarget != 0.99 || opt.obsBurnThreshold != 2.0))
        sim::fatal("--obs-slo-target / --obs-burn-threshold tune the "
                   "SLO monitor and require --obs-interval-ms");

    workloads::Workload w = workloads::makeByName(opt.workload);
    cluster::ClusterConfig cfg;
    cfg.worker = makeWorkerConfig(opt);
    // The fault plan's cluster: clause drives fleet chaos; the
    // calibration runs measure a healthy server, so the plan never
    // reaches the per-worker injector here.
    cfg.faultPlan = cfg.worker.faultPlan;
    cfg.worker.faultPlan = fault::FaultPlan{};
    // --shed-cap is the *fleet-level* admission cap here; the
    // calibration runs measure the server itself unshedded.
    cfg.worker.shedCap = 0;
    // --domains partitions the *fleet* event queue by server; the
    // calibration worker runs serial (and its core count need not
    // admit the fleet's domain count).
    cfg.worker.numDomains = 1;
    cfg.serverQueueCap = static_cast<std::uint32_t>(opt.shedCap);
    cfg.calibration.requests = opt.requests;
    cfg.numServers = opt.cluster;
    cfg.numDomains = opt.domains;
    cfg.lb = cluster::parseLbPolicy(opt.lb);
    cfg.traffic = cluster::TrafficConfig::parse(opt.traffic);
    cfg.traffic.mrps = opt.mrps;
    cfg.traffic.durationUs = opt.durationMs * 1000.0;
    cfg.sloUs = opt.sloUs;
    cfg.seed = opt.seed;
    if (opt.autoscale) {
        cfg.autoscale.enabled = true;
        cfg.autoscale.minServers = opt.autoscaleLo;
        cfg.autoscale.maxServers = opt.autoscaleHi;
    }
    cfg.resilience.hedgeUs = opt.hedgeUs;
    cfg.resilience.outlierEject = opt.outlierEject;
    cfg.resilience.ejectMult = opt.ejectMult;
    cfg.resilience.retryBudgetFrac = opt.retryBudget;
    cfg.resilience.healthCheck = opt.healthCheck;
    cfg.resilience.breaker = opt.breaker;

    cluster::ServerModel model = cluster::calibrateServer(
        w, cfg.worker, cfg.calibration, pool);
    cluster::ClusterSim sim(cfg, model);

    obs::ObsConfig ocfg;
    ocfg.intervalUs = opt.obsIntervalMs * 1000.0;
    ocfg.trace = !opt.obsTraceOut.empty();
    ocfg.sloTargetFrac = opt.obsSloTarget;
    ocfg.burnThreshold = opt.obsBurnThreshold;
    std::optional<obs::FleetObserver> observer;
    if (ocfg.enabled()) {
        // The observer sees the resolved fleet: every server the
        // autoscaler could ever enlist, and the finalized tenant list
        // with their absolute SLOs.
        unsigned max_servers = cfg.numServers;
        if (cfg.autoscale.enabled)
            max_servers = std::max(cfg.numServers,
                                   cfg.autoscale.maxServers == 0
                                       ? cfg.numServers
                                       : cfg.autoscale.maxServers);
        double slo_us =
            cfg.sloUs > 0 ? cfg.sloUs : 10.0 * model.meanLatencyUs;
        cfg.traffic.finalize();
        std::vector<obs::ObsTenant> tenants;
        for (const cluster::TenantSpec &spec : cfg.traffic.tenants)
            tenants.push_back(obs::ObsTenant{
                spec.name, slo_us * spec.sloMultiplier});
        observer.emplace(ocfg, max_servers, std::move(tenants),
                         model.concurrency,
                         cfg.worker.machine.freqGhz);
        sim.setObserver(&*observer);
    }

    cluster::ClusterResult res = sim.run();

    auto openOut = [](const std::string &path) {
        std::ofstream out(path);
        if (!out)
            sim::fatal("cannot open '%s'", path.c_str());
        return out;
    };
    if (observer && !opt.obsOut.empty()) {
        {
            auto out = openOut(opt.obsOut + ".windows.csv");
            observer->writeWindowsCsv(out);
        }
        {
            auto out = openOut(opt.obsOut + ".events.csv");
            observer->writeEventsCsv(out);
        }
        std::fprintf(stderr,
                     "wrote %zu telemetry windows and %zu events to "
                     "%s.{windows,events}.csv\n",
                     observer->windows().size(),
                     observer->events().size(), opt.obsOut.c_str());
    }
    if (observer && !opt.obsTraceOut.empty()) {
        auto out = openOut(opt.obsTraceOut);
        trace::writeChromeTrace(*observer->tracer(), out);
        std::fprintf(stderr, "wrote %zu fleet spans to %s\n",
                     observer->tracer()->numSpans(),
                     opt.obsTraceOut.c_str());
    }
    if (!opt.metricsOut.empty()) {
        trace::MetricsRegistry registry;
        cluster::attachClusterMetrics(res, registry);
        if (observer)
            observer->attachMetrics(registry);
        auto out = openOut(opt.metricsOut);
        registry.writeCsv(out);
        std::fprintf(stderr, "wrote %zu metrics to %s\n",
                     registry.size(), opt.metricsOut.c_str());
    }
    if (!opt.jsonOut.empty()) {
        std::map<std::string, double> json;
        json["cluster.offered_mrps"] = res.offeredMrps;
        json["cluster.achieved_mrps"] = res.achievedMrps;
        json["cluster.goodput_mrps"] = res.goodputMrps;
        json["cluster.p99_us"] = res.p99Us;
        json["cluster.cost_server_s"] = res.costServerSeconds;
        json["cluster.shed"] = static_cast<double>(res.shed);
        json["cluster.failed"] = static_cast<double>(res.failed);
        json["cluster.retries"] = static_cast<double>(res.retries);
        json["cluster.hedges"] = static_cast<double>(res.hedges);
        json["cluster.hedge_wins"] =
            static_cast<double>(res.hedgeWins);
        json["cluster.crashes"] = static_cast<double>(res.crashes);
        json["cluster.restarts"] = static_cast<double>(res.restarts);
        json["cluster.ejections"] =
            static_cast<double>(res.ejections);
        json["cluster.breaker_opens"] =
            static_cast<double>(res.breakerOpens);
        json["cluster.ttr_us"] = res.timeToRecoverUs;
        json["cluster.slo_burn"] = res.sloBurn;
        std::ofstream out(opt.jsonOut);
        if (!out)
            sim::fatal("cannot open '%s'", opt.jsonOut.c_str());
        prof::writeFlatJson(out, json);
    }

    if (opt.csv) {
        std::printf("workload,system,servers,lb,traffic,offered_mrps,"
                    "achieved_mrps,goodput_mrps,mean_us,p50_us,p99_us,"
                    "slo_us,cost_server_s,completed,shed,cold_starts,"
                    "failed,retries,hedges,hedge_wins,crashes,"
                    "restarts,ejections,breaker_opens,ttr_us,slo_burn,"
                    "final_servers\n");
        std::printf(
            "%s,%s,%u,%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,"
            "%.6f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
            "%llu,%.4f,%.6f,%u\n",
            opt.workload.c_str(), opt.system.c_str(), opt.cluster,
            opt.lb.c_str(), opt.traffic.c_str(), res.offeredMrps,
            res.achievedMrps, res.goodputMrps, res.meanUs, res.p50Us,
            res.p99Us, res.sloUs, res.costServerSeconds,
            static_cast<unsigned long long>(res.completed),
            static_cast<unsigned long long>(res.shed),
            static_cast<unsigned long long>(res.coldStarts),
            static_cast<unsigned long long>(res.failed),
            static_cast<unsigned long long>(res.retries),
            static_cast<unsigned long long>(res.hedges),
            static_cast<unsigned long long>(res.hedgeWins),
            static_cast<unsigned long long>(res.crashes),
            static_cast<unsigned long long>(res.restarts),
            static_cast<unsigned long long>(res.ejections),
            static_cast<unsigned long long>(res.breakerOpens),
            res.timeToRecoverUs, res.sloBurn, res.finalActiveServers);
        return 0;
    }

    std::printf("%s on %s, fleet of %u (lb=%s, traffic=%s) @ %.2f "
                "MRPS offered\n",
                opt.workload.c_str(), opt.system.c_str(), opt.cluster,
                opt.lb.c_str(), opt.traffic.c_str(), opt.mrps);
    std::printf("  server       %.3f MRPS capacity, %.1f us mean "
                "latency, concurrency %u\n",
                model.capacityMrps, model.meanLatencyUs,
                model.concurrency);
    std::printf("  throughput   %.2f MRPS achieved, %.2f MRPS goodput "
                "(SLO %.1f us)\n",
                res.achievedMrps, res.goodputMrps, res.sloUs);
    std::printf("  latency      %.2f us mean, %.2f us p50, "
                "%.2f us p99\n",
                res.meanUs, res.p50Us, res.p99Us);
    std::printf("  outcomes     %llu completed, %llu shed, "
                "%llu failed, %llu cold starts\n",
                static_cast<unsigned long long>(res.completed),
                static_cast<unsigned long long>(res.shed),
                static_cast<unsigned long long>(res.failed),
                static_cast<unsigned long long>(res.coldStarts));
    if (res.crashes || res.retries || res.hedges || res.ejections ||
        res.breakerOpens) {
        std::printf("  chaos        %llu crashes (%llu restarts), "
                    "%llu retries, %llu hedges (%llu wins), "
                    "%llu ejections, %llu breaker opens\n",
                    static_cast<unsigned long long>(res.crashes),
                    static_cast<unsigned long long>(res.restarts),
                    static_cast<unsigned long long>(res.retries),
                    static_cast<unsigned long long>(res.hedges),
                    static_cast<unsigned long long>(res.hedgeWins),
                    static_cast<unsigned long long>(res.ejections),
                    static_cast<unsigned long long>(
                        res.breakerOpens));
        if (res.crashes) {
            if (res.timeToRecoverUs < 0)
                std::printf("  recovery     never recovered, "
                            "SLO burn %.4f\n",
                            res.sloBurn);
            else
                std::printf("  recovery     %.1f us to recover, "
                            "SLO burn %.4f\n",
                            res.timeToRecoverUs, res.sloBurn);
        }
    }
    std::printf("  cost         %.6f server-seconds (%u servers "
                "final)\n",
                res.costServerSeconds, res.finalActiveServers);
    for (const cluster::TenantStats &tenant : res.tenants)
        std::printf("  tenant       %-12s %llu completed, %llu shed, "
                    "p99 %.2f us, SLO %.1f us (%.1f%% attained)\n",
                    tenant.name.c_str(),
                    static_cast<unsigned long long>(tenant.completed),
                    static_cast<unsigned long long>(tenant.shed),
                    tenant.p99Us, tenant.sloUs,
                    100.0 * tenant.sloAttainment);
    if (opt.autoscale) {
        std::printf("  autoscale   ");
        for (const cluster::ScaleEvent &event : res.scaleEvents)
            std::printf(" %u@%.0fus", event.activeServers, event.atUs);
        std::printf("\n");
    }
    return 0;
}

int
runSweep(const Options &opt, par::ThreadPool *pool)
{
    workloads::Workload w = workloads::makeByName(opt.workload);
    workloads::SweepConfig cfg;
    cfg.worker = makeWorkerConfig(opt);
    cfg.requestsPerPoint = opt.requests;
    cfg.pool = pool;
    double slo_us = workloads::measureSloUs(w, cfg);
    auto loads =
        workloads::loadSeries(opt.sweepLo, opt.sweepHi, opt.sweepN);
    workloads::SweepResult res = workloads::sweepLoad(
        w, parseSystem(opt.system), loads, slo_us, cfg);

    if (opt.csv) {
        std::printf("offered_mrps,achieved_mrps,p99_us,meets_slo\n");
        for (const auto &point : res.points)
            std::printf("%.4f,%.4f,%.4f,%d\n", point.offeredMrps,
                        point.achievedMrps, point.p99Us,
                        point.meetsSlo ? 1 : 0);
        return 0;
    }
    std::printf("%s on %s, SLO = %.1f us\n", opt.workload.c_str(),
                opt.system.c_str(), slo_us);
    for (const auto &point : res.points)
        std::printf("  %7.2f MRPS -> %7.2f achieved, p99 %8.1f us %s\n",
                    point.offeredMrps, point.achievedMrps, point.p99Us,
                    point.meetsSlo ? "" : " (over SLO)");
    std::printf("throughput under SLO: %.2f MRPS\n",
                res.throughputUnderSlo);
    return 0;
}

int
runSeedSweep(const Options &opt, par::ThreadPool *pool)
{
    // Seed-sweep runs are plain measurement runs: per-run observers
    // would need per-seed output files, so reject them up front.
    if (!opt.traceOut.empty() || !opt.metricsOut.empty() ||
        !opt.profOut.empty() || !opt.pmuOut.empty())
        sim::fatal("--seed-sweep does not support --trace-out, "
                   "--metrics-out, --prof-out or --pmu-out");
    if (opt.check.any())
        sim::fatal("--seed-sweep does not support --check");

    workloads::Workload w = workloads::makeByName(opt.workload);
    workloads::SeedSweepConfig cfg;
    cfg.worker = makeWorkerConfig(opt);
    cfg.seedLo = opt.seedLo;
    cfg.seedHi = opt.seedHi;
    cfg.mrps = opt.mrps;
    cfg.requests = opt.requests;
    cfg.pool = pool;
    std::vector<RunResult> results = workloads::runSeedSweep(w, cfg);

    if (!opt.jsonOut.empty()) {
        std::ofstream out(opt.jsonOut);
        if (!out)
            sim::fatal("cannot open '%s'", opt.jsonOut.c_str());
        prof::writeFlatJson(out,
                            workloads::seedSweepJson(cfg, results));
        std::fprintf(stderr, "wrote %zu per-seed summaries to %s\n",
                     results.size(), opt.jsonOut.c_str());
    }
    if (opt.csv) {
        std::fputs(workloads::seedSweepCsv(opt.workload, opt.system,
                                           cfg, results)
                       .c_str(),
                   stdout);
        return 0;
    }
    std::printf("%s on %s @ %.2f MRPS offered, seeds %llu..%llu\n",
                opt.workload.c_str(), opt.system.c_str(), opt.mrps,
                static_cast<unsigned long long>(opt.seedLo),
                static_cast<unsigned long long>(opt.seedHi));
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &res = results[i];
        std::printf("  seed %llu: %.3f MRPS achieved, %.2f us mean, "
                    "%.2f us p50, %.2f us p99, %llu/%llu completed\n",
                    static_cast<unsigned long long>(opt.seedLo + i),
                    res.achievedMrps, res.latencyUs.mean(),
                    res.latencyUs.p50(), res.latencyUs.p99(),
                    static_cast<unsigned long long>(
                        res.completedRequests),
                    static_cast<unsigned long long>(
                        res.completedRequests + res.failedRequests +
                        res.timedOutRequests + res.shedRequests));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    if (opt.sweep && opt.seedSweep)
        sim::fatal("--sweep and --seed-sweep are mutually exclusive");
    if (opt.cluster > 0 && (opt.sweep || opt.seedSweep))
        sim::fatal("--cluster is mutually exclusive with --sweep and "
                   "--seed-sweep");
    // Mode/flag compatibility: a flag that only one mode reads is an
    // error in the other, never a silent no-op.
    if (opt.cluster > 0 && !opt.workerOnlyFlags.empty())
        sim::fatal("%s is a worker-only flag and has no effect with "
                   "--cluster (remove it)",
                   opt.workerOnlyFlags.front().c_str());
    if (opt.cluster == 0 && !opt.clusterOnlyFlags.empty())
        sim::fatal("%s is a fleet-only flag and requires --cluster N",
                   opt.clusterOnlyFlags.front().c_str());
    if (!opt.faultPlan.empty()) {
        fault::FaultPlan plan = fault::FaultPlan::parse(opt.faultPlan);
        if (opt.cluster > 0 &&
            (plan.defaults.any() || !plan.byFunction.empty()))
            sim::fatal("fault plan: function-scope clauses are "
                       "worker-only; --cluster reads only the "
                       "'cluster:' clause (and seed)");
        if (opt.cluster == 0 && plan.cluster.any())
            sim::fatal("fault plan: the 'cluster:' clause requires "
                       "--cluster N");
    }
    std::unique_ptr<par::ThreadPool> pool;
    if (opt.jobs > 1)
        pool = std::make_unique<par::ThreadPool>(opt.jobs);
    if (opt.cluster > 0)
        return runCluster(opt, pool.get());
    if (opt.seedSweep)
        return runSeedSweep(opt, pool.get());
    return opt.sweep ? runSweep(opt, pool.get()) : runOnce(opt);
}
