/**
 * @file
 * jordsim: command-line driver for one-off simulation runs.
 *
 * Runs a (workload, system, load) combination on a configurable machine
 * and prints either a human-readable report or CSV for scripting:
 *
 *     jordsim --workload Hipster --system Jord --mrps 4.0
 *     jordsim --workload Media --system NightCore --requests 50000 --csv
 *     jordsim --workload Hotel --sweep 0.5:9:12   # load sweep + SLO knee
 *
 * Flags:
 *   --workload NAME    Hipster | Hotel | Media | Social  (default Hipster)
 *   --system NAME      Jord | JordNI | JordBT | NightCore (default Jord)
 *   --mrps X           offered load in MRPS               (default 1.0)
 *   --requests N       external requests                  (default 20000)
 *   --cores N          machine size                       (default 32)
 *   --sockets N        socket count                       (default 1)
 *   --orchestrators N  orchestrator threads               (default 4)
 *   --seed N           RNG seed                           (default 42)
 *   --sweep LO:HI:N    sweep N loads in [LO, HI] and report the SLO knee
 *   --csv              machine-readable output
 *   --trace-out FILE   write a Chrome trace-event / Perfetto JSON trace
 *   --metrics-out FILE write the metrics registry as CSV
 *
 * --trace-out and --metrics-out also accept the --flag=value form.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "sim/logging.hh"
#include "trace/export.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"
#include "workloads/sweep.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

SystemKind
parseSystem(const std::string &name)
{
    if (name == "Jord")
        return SystemKind::Jord;
    if (name == "JordNI")
        return SystemKind::JordNI;
    if (name == "JordBT")
        return SystemKind::JordBT;
    if (name == "NightCore")
        return SystemKind::NightCore;
    sim::fatal("unknown system '%s' (Jord|JordNI|JordBT|NightCore)",
               name.c_str());
}

struct Options {
    std::string workload = "Hipster";
    std::string system = "Jord";
    double mrps = 1.0;
    std::uint64_t requests = 20000;
    unsigned cores = 32;
    unsigned sockets = 1;
    unsigned orchestrators = 4;
    std::uint64_t seed = 42;
    bool csv = false;
    bool sweep = false;
    double sweepLo = 0, sweepHi = 0;
    unsigned sweepN = 0;
    std::string traceOut;
    std::string metricsOut;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            sim::fatal("%s requires a value", flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // --flag=value form for the file-emitting flags.
        if (std::size_t eq = arg.find('=');
            eq != std::string::npos &&
            (arg.compare(0, eq, "--trace-out") == 0 ||
             arg.compare(0, eq, "--metrics-out") == 0)) {
            std::string value = arg.substr(eq + 1);
            if (value.empty())
                sim::fatal("%s requires a value",
                           arg.substr(0, eq).c_str());
            if (arg.compare(0, eq, "--trace-out") == 0)
                opt.traceOut = value;
            else
                opt.metricsOut = value;
            continue;
        }
        if (arg == "--workload")
            opt.workload = need(i, "--workload");
        else if (arg == "--system")
            opt.system = need(i, "--system");
        else if (arg == "--mrps")
            opt.mrps = std::strtod(need(i, "--mrps"), nullptr);
        else if (arg == "--requests")
            opt.requests =
                std::strtoull(need(i, "--requests"), nullptr, 10);
        else if (arg == "--cores")
            opt.cores = static_cast<unsigned>(
                std::strtoul(need(i, "--cores"), nullptr, 10));
        else if (arg == "--sockets")
            opt.sockets = static_cast<unsigned>(
                std::strtoul(need(i, "--sockets"), nullptr, 10));
        else if (arg == "--orchestrators")
            opt.orchestrators = static_cast<unsigned>(
                std::strtoul(need(i, "--orchestrators"), nullptr, 10));
        else if (arg == "--seed")
            opt.seed = std::strtoull(need(i, "--seed"), nullptr, 10);
        else if (arg == "--trace-out")
            opt.traceOut = need(i, "--trace-out");
        else if (arg == "--metrics-out")
            opt.metricsOut = need(i, "--metrics-out");
        else if (arg == "--csv")
            opt.csv = true;
        else if (arg == "--sweep") {
            const char *spec = need(i, "--sweep");
            if (std::sscanf(spec, "%lf:%lf:%u", &opt.sweepLo,
                            &opt.sweepHi, &opt.sweepN) != 3)
                sim::fatal("--sweep expects LO:HI:N, got '%s'", spec);
            opt.sweep = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("see the header of tools/jordsim.cc\n");
            std::exit(0);
        } else {
            sim::fatal("unknown flag '%s' (try --help)", arg.c_str());
        }
    }
    return opt;
}

WorkerConfig
makeWorkerConfig(const Options &opt)
{
    WorkerConfig cfg;
    if (opt.cores != 32 || opt.sockets != 1)
        cfg.machine = sim::MachineConfig::scaled(opt.cores, opt.sockets);
    cfg.system = parseSystem(opt.system);
    cfg.numOrchestrators = opt.orchestrators;
    cfg.seed = opt.seed;
    return cfg;
}

int
runOnce(const Options &opt)
{
    workloads::Workload w = workloads::makeByName(opt.workload);
    WorkerConfig cfg = makeWorkerConfig(opt);
    WorkerServer worker(cfg, w.registry);

    trace::Tracer tracer(cfg.machine.freqGhz);
    trace::MetricsRegistry registry;
    if (!opt.traceOut.empty()) {
        worker.setTracer(&tracer);
        char mrps[32];
        std::snprintf(mrps, sizeof(mrps), "%.4f", opt.mrps);
        tracer.setMeta("workload", opt.workload);
        tracer.setMeta("mrps", mrps);
        tracer.setMeta("machine",
                       std::to_string(cfg.machine.numCores) + "c/" +
                           std::to_string(cfg.machine.numSockets) + "s");
    }
    if (!opt.metricsOut.empty())
        worker.attachMetrics(registry);

    RunResult res = worker.run(opt.mrps, opt.requests, w.mix);

    if (!opt.traceOut.empty()) {
        std::ofstream out(opt.traceOut);
        if (!out)
            sim::fatal("cannot open '%s'", opt.traceOut.c_str());
        trace::writeChromeTrace(tracer, out);
        std::fprintf(stderr, "wrote %zu spans to %s\n",
                     tracer.numSpans(), opt.traceOut.c_str());
    }
    if (!opt.metricsOut.empty()) {
        std::ofstream out(opt.metricsOut);
        if (!out)
            sim::fatal("cannot open '%s'", opt.metricsOut.c_str());
        registry.writeCsv(out);
        std::fprintf(stderr, "wrote %zu metrics to %s\n",
                     registry.size(), opt.metricsOut.c_str());
    }

    if (opt.csv) {
        std::printf("workload,system,offered_mrps,achieved_mrps,"
                    "mean_us,p50_us,p99_us,invocations,utilization\n");
        std::printf("%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%llu,%.4f\n",
                    opt.workload.c_str(), opt.system.c_str(), opt.mrps,
                    res.achievedMrps, res.latencyUs.mean(),
                    res.latencyUs.p50(), res.latencyUs.p99(),
                    static_cast<unsigned long long>(res.invocations),
                    res.executorUtilization);
        return 0;
    }

    std::printf("%s on %s @ %.2f MRPS offered\n", opt.workload.c_str(),
                opt.system.c_str(), opt.mrps);
    std::printf("  achieved     %.2f MRPS\n", res.achievedMrps);
    std::printf("  latency      %.2f us mean, %.2f us p50, "
                "%.2f us p99\n",
                res.latencyUs.mean(), res.latencyUs.p50(),
                res.latencyUs.p99());
    std::printf("  service      %.2f us mean per invocation\n",
                res.serviceUs.mean());
    std::printf("  invocations  %llu (%.2f per request)\n",
                static_cast<unsigned long long>(res.invocations),
                static_cast<double>(res.invocations) /
                    static_cast<double>(
                        std::max<std::uint64_t>(1,
                                                res.completedRequests)));
    std::printf("  utilization  %.0f%% of %u executors\n",
                100.0 * res.executorUtilization, worker.numExecutors());
    double ghz = worker.config().machine.freqGhz;
    std::printf("  overheads    isolation %.0f ns/inv, dispatch %.0f "
                "ns/req, pipes %.0f ns/inv\n",
                sim::cyclesToNs(res.totals.isolation, ghz) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, res.invocations)),
                res.dispatchNs.mean(),
                sim::cyclesToNs(res.totals.pipe, ghz) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, res.invocations)));
    return 0;
}

int
runSweep(const Options &opt)
{
    workloads::Workload w = workloads::makeByName(opt.workload);
    workloads::SweepConfig cfg;
    cfg.worker = makeWorkerConfig(opt);
    cfg.requestsPerPoint = opt.requests;
    double slo_us = workloads::measureSloUs(w, cfg);
    auto loads =
        workloads::loadSeries(opt.sweepLo, opt.sweepHi, opt.sweepN);
    workloads::SweepResult res = workloads::sweepLoad(
        w, parseSystem(opt.system), loads, slo_us, cfg);

    if (opt.csv) {
        std::printf("offered_mrps,achieved_mrps,p99_us,meets_slo\n");
        for (const auto &point : res.points)
            std::printf("%.4f,%.4f,%.4f,%d\n", point.offeredMrps,
                        point.achievedMrps, point.p99Us,
                        point.meetsSlo ? 1 : 0);
        return 0;
    }
    std::printf("%s on %s, SLO = %.1f us\n", opt.workload.c_str(),
                opt.system.c_str(), slo_us);
    for (const auto &point : res.points)
        std::printf("  %7.2f MRPS -> %7.2f achieved, p99 %8.1f us %s\n",
                    point.offeredMrps, point.achievedMrps, point.p99Us,
                    point.meetsSlo ? "" : " (over SLO)");
    std::printf("throughput under SLO: %.2f MRPS\n",
                res.throughputUnderSlo);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    return opt.sweep ? runSweep(opt) : runOnce(opt);
}
