/**
 * @file
 * jordprof: render and compare profile / bench JSON summaries.
 *
 * Works on the flat {"key": number} JSON written by `jordsim
 * --prof-out` (BASE.json) and by the bench targets (BENCH_<name>.json):
 *
 *     jordprof report profile.json
 *     jordprof diff old.json new.json --threshold 10%
 *
 * `diff` compares the performance metrics the two files share and
 * exits non-zero when any regresses by more than the threshold.
 * Latency-style keys (us/ns suffixes) regress when they grow;
 * throughput-style keys (mrps/goodput/achieved/throughput) regress
 * when they shrink.  Event-count keys (counter.*, topdown.*, samples)
 * are reported for context but never gate.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "prof/profile_json.hh"
#include "sim/logging.hh"

using namespace jord;

namespace {

std::map<std::string, double>
loadFlatJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    if (text.find_first_not_of(" \t\r\n") == std::string::npos)
        sim::fatal("'%s' is empty, not a profile/bench JSON",
                   path.c_str());
    std::map<std::string, double> kv;
    if (!prof::parseFlatJson(text, kv))
        sim::fatal("'%s' is not a flat {\"key\": number} JSON object "
                   "(truncated file?)",
                   path.c_str());
    return kv;
}

bool
contains(const std::string &key, const char *needle)
{
    return key.find(needle) != std::string::npos;
}

/** Throughput-style metric: a decrease is the regression. */
bool
higherIsBetter(const std::string &key)
{
    return contains(key, "mrps") || contains(key, "goodput") ||
           contains(key, "achieved") || contains(key, "throughput") ||
           contains(key, "events_per_sec");
}

/** Keys that gate a diff; the rest is informational context. */
bool
isGatingMetric(const std::string &key)
{
    // Event counts and sample totals are context, never a gate
    // ("counter.noc_msgs" must not match the "_ms" latency suffix).
    if (key.rfind("counter.", 0) == 0 || key.rfind("topdown.", 0) == 0 ||
        key == "samples" || key == "total_ticks")
        return false;
    static const char *const kPatterns[] = {
        "_us",  ".us",  "_ns",     ".ns",      "_ms",    ".ms",
        "mrps", "goodput", "achieved", "throughput", "latency",
        "events_per_sec",
    };
    for (const char *pattern : kPatterns)
        if (contains(key, pattern))
            return true;
    return false;
}

double
parseThreshold(const std::string &spec)
{
    char *end = nullptr;
    double value = std::strtod(spec.c_str(), &end);
    if (end == spec.c_str() || value < 0)
        sim::fatal("--threshold expects a fraction ('0.1') or a "
                   "percentage ('10%%'), got '%s'",
                   spec.c_str());
    if (*end == '%')
        value /= 100.0;
    else if (*end != '\0')
        sim::fatal("--threshold expects a fraction ('0.1') or a "
                   "percentage ('10%%'), got '%s'",
                   spec.c_str());
    return value;
}

int
cmdReport(const std::string &path)
{
    auto kv = loadFlatJson(path);
    std::printf("%s (%zu keys)\n", path.c_str(), kv.size());
    std::string group;
    for (const auto &[key, value] : kv) {
        std::size_t dot = key.find('.');
        std::string prefix =
            dot == std::string::npos ? "" : key.substr(0, dot);
        if (prefix != group) {
            group = prefix;
            std::printf("\n[%s]\n", group.c_str());
        }
        std::printf("  %-28s %.6g\n", key.c_str(), value);
    }
    return 0;
}

int
cmdDiff(const std::string &old_path, const std::string &new_path,
        double threshold)
{
    auto old_kv = loadFlatJson(old_path);
    auto new_kv = loadFlatJson(new_path);

    unsigned regressions = 0, improvements = 0, compared = 0;
    for (const auto &[key, old_value] : old_kv) {
        auto it = new_kv.find(key);
        if (it == new_kv.end()) {
            std::printf("  %-28s only in %s\n", key.c_str(),
                        old_path.c_str());
            continue;
        }
        double new_value = it->second;
        if (!isGatingMetric(key))
            continue;
        ++compared;
        // Relative change in the "worse" direction; an old value of
        // zero cannot regress relatively (a nonzero new latency on a
        // zero baseline is flagged absolutely).
        double delta;
        if (old_value != 0) {
            delta = (new_value - old_value) / std::fabs(old_value);
            if (higherIsBetter(key))
                delta = -delta;
        } else {
            delta = new_value != 0 && !higherIsBetter(key)
                        ? std::numeric_limits<double>::infinity()
                        : 0;
        }
        const char *mark = " ";
        if (delta > threshold) {
            mark = "!";
            ++regressions;
        } else if (delta < -threshold) {
            mark = "+";
            ++improvements;
        }
        std::printf("%s %-28s %12.6g -> %-12.6g (%+.1f%%)\n", mark,
                    key.c_str(), old_value, new_value,
                    100.0 * (old_value != 0
                                 ? (new_value - old_value) /
                                       std::fabs(old_value)
                                 : 0.0));
    }
    for (const auto &[key, value] : new_kv)
        if (!old_kv.count(key))
            std::printf("  %-28s only in %s\n", key.c_str(),
                        new_path.c_str());

    std::printf("%u metrics compared, %u regressed, %u improved "
                "(threshold %.1f%%)\n",
                compared, regressions, improvements,
                100.0 * threshold);
    return regressions ? 1 : 0;
}

void
printUsage()
{
    std::printf(
        "usage: jordprof report FILE.json\n"
        "       jordprof diff OLD.json NEW.json [--threshold 10%%]\n"
        "\n"
        "report  pretty-print a profile/bench JSON summary\n"
        "diff    compare performance metrics of two summaries and\n"
        "        exit 1 when any regresses past the threshold\n"
        "        (default 10%%); latency keys regress upward,\n"
        "        throughput keys downward\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        printUsage();
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        printUsage();
        return 0;
    }
    if (cmd == "report") {
        if (argc != 3)
            sim::fatal("report expects exactly one FILE.json");
        return cmdReport(argv[2]);
    }
    if (cmd == "diff") {
        std::vector<std::string> files;
        double threshold = 0.10;
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--threshold", 0) == 0) {
                std::string spec;
                if (std::size_t eq = arg.find('=');
                    eq != std::string::npos)
                    spec = arg.substr(eq + 1);
                else if (i + 1 < argc)
                    spec = argv[++i];
                else
                    sim::fatal("--threshold requires a value");
                threshold = parseThreshold(spec);
            } else {
                files.push_back(arg);
            }
        }
        if (files.size() != 2)
            sim::fatal("diff expects OLD.json NEW.json");
        return cmdDiff(files[0], files[1], threshold);
    }
    sim::fatal("unknown subcommand '%s' (report|diff)", cmd.c_str());
}
