/**
 * @file
 * jordmon: incident timelines over the fleet observability artifacts.
 *
 * Works on the `BASE.windows.csv` / `BASE.events.csv` pair written by
 * `jordsim --cluster --obs-interval-ms ... --obs-out BASE`:
 *
 *     jordmon report BASE
 *     jordmon report BASE --json mon.json --heatmap heat.csv
 *     jordmon diff old.json new.json --threshold 10%
 *
 * `report` joins the SLO monitor's alerts against the ground-truth
 * chaos incidents (obs/monitor.hh) and prints, per incident: kind,
 * blast radius (servers and tenants), detect latency (first alert -
 * injection), time-to-recover, and the attributable SLO burn.
 * `--heatmap` adds the per-server x window P99 matrix.
 *
 * `diff` compares two `report --json` summaries the way jordprof diff
 * compares profiles, except every gating key here is lower-is-better:
 * detect latency, TTR, burn, and unmatched (false-positive) alerts
 * regress when they grow. Exits 1 on a regression past the threshold.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/monitor.hh"
#include "prof/profile_json.hh"
#include "sim/logging.hh"

using namespace jord;

namespace {

std::map<std::string, double>
loadFlatJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    if (text.find_first_not_of(" \t\r\n") == std::string::npos)
        sim::fatal("'%s' is empty, not a jordmon JSON summary",
                   path.c_str());
    std::map<std::string, double> kv;
    if (!prof::parseFlatJson(text, kv))
        sim::fatal("'%s' is not a flat {\"key\": number} JSON object "
                   "(truncated file?)",
                   path.c_str());
    return kv;
}

bool
contains(const std::string &key, const char *needle)
{
    return key.find(needle) != std::string::npos;
}

/** Keys that gate a diff — all lower-is-better here. */
bool
isGatingMetric(const std::string &key)
{
    return contains(key, "ttr") || contains(key, "detect") ||
           contains(key, "burn") || contains(key, "unmatched");
}

double
parseThreshold(const std::string &spec)
{
    char *end = nullptr;
    double value = std::strtod(spec.c_str(), &end);
    if (end == spec.c_str() || value < 0)
        sim::fatal("--threshold expects a fraction ('0.1') or a "
                   "percentage ('10%%'), got '%s'",
                   spec.c_str());
    if (*end == '%')
        value /= 100.0;
    else if (*end != '\0')
        sim::fatal("--threshold expects a fraction ('0.1') or a "
                   "percentage ('10%%'), got '%s'",
                   spec.c_str());
    return value;
}

int
cmdReport(const std::string &base, double slack_us,
          const std::string &json_out, const std::string &heatmap_out)
{
    std::string windows_path = base + ".windows.csv";
    std::string events_path = base + ".events.csv";
    std::ifstream win(windows_path);
    if (!win)
        sim::fatal("cannot open '%s' (jordsim --obs-out %s writes "
                   "it)",
                   windows_path.c_str(), base.c_str());
    std::ifstream evt(events_path);
    if (!evt)
        sim::fatal("cannot open '%s' (jordsim --obs-out %s writes "
                   "it)",
                   events_path.c_str(), base.c_str());
    std::vector<obs::MonWindow> windows =
        obs::parseWindowsCsv(win, windows_path);
    std::vector<obs::MonEvent> events =
        obs::parseEventsCsv(evt, events_path);
    obs::MonReport report =
        obs::buildReport(events, windows, slack_us);

    std::fputs(obs::renderReport(report).c_str(), stdout);

    if (!json_out.empty()) {
        std::ofstream out(json_out);
        if (!out)
            sim::fatal("cannot open '%s'", json_out.c_str());
        prof::writeFlatJson(out, obs::flatReport(report));
        std::fprintf(stderr, "wrote jordmon summary to %s\n",
                     json_out.c_str());
    }
    if (!heatmap_out.empty()) {
        std::ofstream out(heatmap_out);
        if (!out)
            sim::fatal("cannot open '%s'", heatmap_out.c_str());
        obs::writeHeatmapCsv(windows, out);
        std::fprintf(stderr, "wrote p99 heatmap to %s\n",
                     heatmap_out.c_str());
    }
    return 0;
}

int
cmdDiff(const std::string &old_path, const std::string &new_path,
        double threshold)
{
    auto old_kv = loadFlatJson(old_path);
    auto new_kv = loadFlatJson(new_path);

    unsigned regressions = 0, improvements = 0, compared = 0;
    for (const auto &[key, old_value] : old_kv) {
        auto it = new_kv.find(key);
        if (it == new_kv.end()) {
            std::printf("  %-24s only in %s\n", key.c_str(),
                        old_path.c_str());
            continue;
        }
        double new_value = it->second;
        if (!isGatingMetric(key))
            continue;
        ++compared;
        double delta;
        if (contains(key, "detect") &&
            (old_value < 0 || new_value < 0)) {
            // detect_us = -1 means "never detected": losing detection
            // is the regression, gaining it the improvement.
            delta = old_value < 0 && new_value >= 0
                        ? -std::numeric_limits<double>::infinity()
                    : old_value >= 0 && new_value < 0
                        ? std::numeric_limits<double>::infinity()
                        : 0;
        } else if (old_value != 0) {
            delta = (new_value - old_value) / std::fabs(old_value);
        } else {
            // A zero baseline (clean run, zero burn) regresses on any
            // nonzero new value.
            delta = new_value != 0
                        ? std::numeric_limits<double>::infinity()
                        : 0;
        }
        const char *mark = " ";
        if (delta > threshold) {
            mark = "!";
            ++regressions;
        } else if (delta < -threshold) {
            mark = "+";
            ++improvements;
        }
        std::printf("%s %-24s %12.6g -> %-12.6g\n", mark, key.c_str(),
                    old_value, new_value);
    }
    for (const auto &[key, value] : new_kv)
        if (!old_kv.count(key))
            std::printf("  %-24s only in %s\n", key.c_str(),
                        new_path.c_str());

    std::printf("%u metrics compared, %u regressed, %u improved "
                "(threshold %.1f%%)\n",
                compared, regressions, improvements,
                100.0 * threshold);
    return regressions ? 1 : 0;
}

void
printUsage()
{
    std::printf(
        "usage: jordmon report BASE [--slack-us X] [--json FILE]\n"
        "                           [--heatmap FILE]\n"
        "       jordmon diff OLD.json NEW.json [--threshold 10%%]\n"
        "\n"
        "report  join the SLO monitor's alerts in BASE.events.csv\n"
        "        against the ground-truth chaos incidents and print\n"
        "        the incident timeline: detect latency, TTR, blast\n"
        "        radius, attributable burn. --slack-us extends each\n"
        "        incident's attribution horizon (default 5000).\n"
        "        --json writes a flat summary for jordmon diff;\n"
        "        --heatmap writes the server x window P99 CSV\n"
        "diff    compare two report --json summaries and exit 1 when\n"
        "        any detect/ttr/burn/unmatched metric regresses past\n"
        "        the threshold (default 10%%); all gating keys here\n"
        "        are lower-is-better\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        printUsage();
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        printUsage();
        return 0;
    }
    if (cmd == "report") {
        std::string base, json_out, heatmap_out;
        double slack_us = 5000.0;
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            auto optValue = [&](const char *flag) -> std::string {
                if (std::size_t eq = arg.find('=');
                    eq != std::string::npos)
                    return arg.substr(eq + 1);
                if (i + 1 < argc)
                    return argv[++i];
                sim::fatal("%s requires a value", flag);
            };
            if (arg.rfind("--slack-us", 0) == 0)
                slack_us =
                    std::strtod(optValue("--slack-us").c_str(),
                                nullptr);
            else if (arg.rfind("--json", 0) == 0)
                json_out = optValue("--json");
            else if (arg.rfind("--heatmap", 0) == 0)
                heatmap_out = optValue("--heatmap");
            else if (base.empty())
                base = arg;
            else
                sim::fatal("unexpected argument '%s'", arg.c_str());
        }
        if (base.empty())
            sim::fatal("report expects the BASE of an --obs-out "
                       "artifact pair");
        if (slack_us < 0)
            sim::fatal("--slack-us expects a horizon >= 0, got %g",
                       slack_us);
        return cmdReport(base, slack_us, json_out, heatmap_out);
    }
    if (cmd == "diff") {
        std::vector<std::string> files;
        double threshold = 0.10;
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--threshold", 0) == 0) {
                std::string spec;
                if (std::size_t eq = arg.find('=');
                    eq != std::string::npos)
                    spec = arg.substr(eq + 1);
                else if (i + 1 < argc)
                    spec = argv[++i];
                else
                    sim::fatal("--threshold requires a value");
                threshold = parseThreshold(spec);
            } else {
                files.push_back(arg);
            }
        }
        if (files.size() != 2)
            sim::fatal("diff expects OLD.json NEW.json");
        return cmdDiff(files[0], files[1], threshold);
    }
    sim::fatal("unknown subcommand '%s' (report|diff)", cmd.c_str());
}
