/**
 * @file
 * jordlint: offline isolation-lifecycle linter for jordsim traces.
 *
 * Reads a Chrome trace-event JSON file produced by
 * `jordsim --trace-out=FILE` and re-derives the per-request PD and
 * ArgBuf lifecycles purely from the exported spans — independently of
 * the in-process JordSan checker — then flags requests whose lifecycle
 * does not balance:
 *
 *   - a PD set up (pd_setup) with no matching retire (pd_teardown) or
 *     abort-path reclaim (abort.reclaim), and vice versa;
 *   - a JordNI stack/heap VMA set up (vma_setup) that is never torn
 *     down (vma_teardown) or reclaimed;
 *   - an ArgBuf answered (argbuf.respond) before it was ever read
 *     (argbuf.read), i.e. a response that cannot have consumed the
 *     request's input;
 *   - invocation/request lifecycle spans still open at end of trace.
 *
 * Usage:
 *     jordsim --workload Hotel --trace-out trace.json
 *     jordlint trace.json            # exit 1 if anything is flagged
 *
 * Flags:
 *   --verbose   also print per-request lifecycle tallies
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "sim/logging.hh"
#include "trace/integrity.hh"

namespace {

/** Extract the numeric value following `key`; returns an ok flag. */
bool
jsonNumber(const std::string &line, const char *key, double &out)
{
    std::size_t pos = line.find(key);
    if (pos == std::string::npos)
        return false;
    out = std::strtod(line.c_str() + pos + std::strlen(key), nullptr);
    return true;
}

/** Extract the string value following `key` up to the next `"`. */
bool
jsonString(const std::string &line, const char *key, std::string &out)
{
    std::size_t pos = line.find(key);
    if (pos == std::string::npos)
        return false;
    pos += std::strlen(key);
    std::size_t end = line.find('"', pos);
    if (end == std::string::npos)
        return false;
    out = line.substr(pos, end - pos);
    return true;
}

/** Lifecycle tallies re-derived for one request id. */
struct ReqLifecycle {
    unsigned pdSetups = 0;
    unsigned pdTeardowns = 0;
    unsigned vmaSetups = 0;
    unsigned vmaTeardowns = 0;
    unsigned abortReclaims = 0;
    unsigned argbufReads = 0;
    unsigned argbufResponds = 0;
    double firstReadTs = -1;
    double firstRespondTs = -1;
};

/** One async lifecycle span awaiting its end event. */
struct OpenSpan {
    std::string name;
    double req = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool verbose = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--verbose") == 0) {
            verbose = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::printf("usage: jordlint [--verbose] TRACE.json\n");
            return 0;
        } else if (path.empty()) {
            path = argv[i];
        } else {
            jord::sim::fatal("unexpected argument '%s'", argv[i]);
        }
    }
    if (path.empty())
        jord::sim::fatal("usage: jordlint [--verbose] TRACE.json");

    jord::trace::requireCompleteTraceFile(path);
    std::ifstream in(path);
    if (!in)
        jord::sim::fatal("cannot open '%s'", path.c_str());

    std::map<std::uint64_t, ReqLifecycle> reqs;
    // std::map so still-open spans print in span-id order at the end.
    std::map<std::uint64_t, OpenSpan> open;
    std::uint64_t spanLines = 0;

    std::string line, ph, name;
    while (std::getline(in, line)) {
        if (!jsonString(line, "\"ph\":\"", ph))
            continue;
        if (ph == "X") {
            double req = 0, ts = 0;
            if (!jsonString(line, "\"name\":\"", name) ||
                !jsonNumber(line, "\"req\":", req) || req == 0)
                continue;
            jsonNumber(line, "\"ts\":", ts);
            ++spanLines;
            ReqLifecycle &rl = reqs[static_cast<std::uint64_t>(req)];
            if (name == "pd_setup") {
                ++rl.pdSetups;
            } else if (name == "pd_teardown") {
                ++rl.pdTeardowns;
            } else if (name == "vma_setup") {
                ++rl.vmaSetups;
            } else if (name == "vma_teardown") {
                ++rl.vmaTeardowns;
            } else if (name == "abort.reclaim") {
                ++rl.abortReclaims;
            } else if (name == "argbuf.read") {
                ++rl.argbufReads;
                if (rl.firstReadTs < 0)
                    rl.firstReadTs = ts;
            } else if (name == "argbuf.respond") {
                ++rl.argbufResponds;
                if (rl.firstRespondTs < 0)
                    rl.firstRespondTs = ts;
            }
        } else if (ph == "b") {
            double id = 0;
            std::string cat;
            if (!jsonString(line, "\"cat\":\"", cat) ||
                (cat != "invoke" && cat != "request") ||
                !jsonNumber(line, "\"id\":", id))
                continue;
            OpenSpan span;
            jsonString(line, "\"name\":\"", span.name);
            jsonNumber(line, "\"req\":", span.req);
            open[static_cast<std::uint64_t>(id)] = span;
        } else if (ph == "e") {
            double id = 0;
            if (jsonNumber(line, "\"id\":", id))
                open.erase(static_cast<std::uint64_t>(id));
        }
    }
    if (reqs.empty() && open.empty())
        jord::sim::fatal("'%s' holds no request-attributed spans "
                         "(was the run traced?)", path.c_str());

    unsigned findings = 0;
    auto flag = [&](std::uint64_t req, const char *what) {
        std::printf("jordlint: request %llu: %s\n",
                    static_cast<unsigned long long>(req), what);
        ++findings;
    };

    for (const auto &[req, rl] : reqs) {
        // Every isolation setup must retire through the epilogue or
        // the abort path; an unbalanced count is a leak (or a double
        // teardown) that outlived the run.
        unsigned setups = rl.pdSetups + rl.vmaSetups;
        unsigned teardowns =
            rl.pdTeardowns + rl.vmaTeardowns + rl.abortReclaims;
        if (setups > teardowns)
            flag(req, "PD/VMA set up but never torn down or "
                      "abort-reclaimed");
        else if (teardowns > setups && rl.abortReclaims == 0)
            flag(req, "PD/VMA teardown without a matching setup");
        if (rl.argbufResponds > 0 && rl.argbufReads == 0)
            flag(req, "ArgBuf response without a prior input read");
        else if (rl.argbufResponds > 0 && rl.firstRespondTs >= 0 &&
                 rl.firstReadTs > rl.firstRespondTs)
            flag(req, "ArgBuf response precedes the first input read");
        if (verbose)
            std::printf("  req %llu: pd %u/%u vma %u/%u abort %u "
                        "argbuf %u/%u\n",
                        static_cast<unsigned long long>(req),
                        rl.pdSetups, rl.pdTeardowns, rl.vmaSetups,
                        rl.vmaTeardowns, rl.abortReclaims,
                        rl.argbufReads, rl.argbufResponds);
    }
    for (const auto &[id, span] : open) {
        std::printf("jordlint: span %llu (%s, request %llu) still "
                    "open at end of trace\n",
                    static_cast<unsigned long long>(id),
                    span.name.c_str(),
                    static_cast<unsigned long long>(span.req));
        ++findings;
    }

    std::printf("jordlint: %zu request(s), %llu lifecycle span(s), "
                "%u finding(s)\n",
                reqs.size(),
                static_cast<unsigned long long>(spanLines), findings);
    return findings == 0 ? 0 : 1;
}
