/**
 * @file
 * Minimal C++ tokenizer for detlint.
 *
 * Produces a flat token stream (identifiers, literals, punctuation)
 * plus the comment list, which carries the suppression annotations
 * (see analyzer.hh). Preprocessor directives are consumed whole:
 * detlint analyzes the source as written, not as expanded, so code
 * living inside macros is out of scope by design (the repo defines no
 * function-style macros that construct containers or RNGs).
 *
 * The lexer is deliberately forgiving — it never rejects input — so a
 * half-edited file still lints instead of aborting the whole run.
 */

#ifndef JORD_TOOLS_DETLINT_LEXER_HH
#define JORD_TOOLS_DETLINT_LEXER_HH

#include <string>
#include <vector>

namespace jord::detlint {

enum class Tok { Ident, Number, String, Char, Punct };

struct Token {
    Tok kind;
    std::string text;
    unsigned line;
};

/** One comment, kept for suppression parsing. */
struct Comment {
    std::string text;
    unsigned line; ///< line the comment starts on
    /** Number of newlines inside the comment (block comments). */
    unsigned extraLines = 0;
};

struct LexedFile {
    std::string path;
    std::vector<Token> toks;
    std::vector<Comment> comments;
};

inline bool
isIdentStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

inline bool
isIdentChar(char c)
{
    return isIdentStart(c) || (c >= '0' && c <= '9');
}

inline bool
isDigit(char c)
{
    return c >= '0' && c <= '9';
}

/** Tokenize @p src; @p path is carried through for diagnostics. */
inline LexedFile
lex(const std::string &path, const std::string &src)
{
    LexedFile out;
    out.path = path;
    std::size_t i = 0;
    const std::size_t n = src.size();
    unsigned line = 1;
    bool lineHasCode = false;

    auto push = [&](Tok kind, std::string text) {
        out.toks.push_back({kind, std::move(text), line});
        lineHasCode = true;
    };
    auto newline = [&] {
        ++line;
        lineHasCode = false;
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            newline();
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            ++i;
            continue;
        }
        // Preprocessor directive: consume the logical line whole,
        // honoring backslash continuations.
        if (c == '#' && !lineHasCode) {
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    newline();
                    i += 2;
                    continue;
                }
                if (src[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t start = i;
            while (i < n && src[i] != '\n')
                ++i;
            out.comments.push_back(
                {src.substr(start, i - start), line, 0});
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t start = i;
            unsigned startLine = line;
            unsigned extra = 0;
            i += 2;
            while (i + 1 < n &&
                   !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n') {
                    newline();
                    ++extra;
                }
                ++i;
            }
            i = i + 1 < n ? i + 2 : n;
            out.comments.push_back(
                {src.substr(start, i - start), startLine, extra});
            continue;
        }
        // Identifier, possibly a literal prefix (R"..", u8'...').
        if (isIdentStart(c)) {
            std::size_t start = i;
            while (i < n && isIdentChar(src[i]))
                ++i;
            std::string ident = src.substr(start, i - start);
            bool rawPrefix = i < n && src[i] == '"' &&
                             !ident.empty() && ident.back() == 'R' &&
                             (ident == "R" || ident == "LR" ||
                              ident == "uR" || ident == "UR" ||
                              ident == "u8R");
            bool litPrefix = i < n && (src[i] == '"' || src[i] == '\'') &&
                             (ident == "u8" || ident == "u" ||
                              ident == "U" || ident == "L");
            if (rawPrefix) {
                // R"delim( ... )delim"
                ++i; // past the quote
                std::size_t dstart = i;
                while (i < n && src[i] != '(')
                    ++i;
                std::string delim = src.substr(dstart, i - dstart);
                std::string close = ")" + delim + "\"";
                std::size_t end = src.find(close, i);
                std::size_t stop =
                    end == std::string::npos ? n : end + close.size();
                for (std::size_t k = i; k < stop && k < n; ++k)
                    if (src[k] == '\n')
                        newline();
                i = stop;
                push(Tok::String, "<raw-string>");
                continue;
            }
            if (!litPrefix) {
                push(Tok::Ident, std::move(ident));
                continue;
            }
            c = src[i]; // fall through into the literal scanners
        }
        // String literal.
        if (c == '"') {
            ++i;
            while (i < n && src[i] != '"') {
                if (src[i] == '\\' && i + 1 < n)
                    ++i;
                else if (src[i] == '\n')
                    newline();
                ++i;
            }
            i = i < n ? i + 1 : n;
            push(Tok::String, "<string>");
            continue;
        }
        // Character literal.
        if (c == '\'') {
            ++i;
            while (i < n && src[i] != '\'') {
                if (src[i] == '\\' && i + 1 < n)
                    ++i;
                ++i;
            }
            i = i < n ? i + 1 : n;
            push(Tok::Char, "<char>");
            continue;
        }
        // Number (integer, float, hex, digit separators, exponents).
        if (isDigit(c) || (c == '.' && i + 1 < n && isDigit(src[i + 1]))) {
            std::size_t start = i;
            while (i < n) {
                char d = src[i];
                if (isIdentChar(d) || d == '.' || d == '\'') {
                    ++i;
                } else if ((d == '+' || d == '-') && i > start &&
                           (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                            src[i - 1] == 'p' || src[i - 1] == 'P')) {
                    ++i;
                } else {
                    break;
                }
            }
            push(Tok::Number, src.substr(start, i - start));
            continue;
        }
        // Punctuation; only `::` and `->` matter as multi-char units.
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            push(Tok::Punct, "::");
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            push(Tok::Punct, "->");
            i += 2;
            continue;
        }
        push(Tok::Punct, std::string(1, c));
        ++i;
    }
    return out;
}

} // namespace jord::detlint

#endif // JORD_TOOLS_DETLINT_LEXER_HH
