/**
 * @file
 * detlint rule engine: a lightweight scope/type layer over the token
 * stream that enforces the repo's determinism and isolation contracts
 * as named rules.
 *
 *   D1  banned nondeterminism sources (wall clocks, std::rand,
 *       random_device, sleeps, raw getenv outside the annotated
 *       sim::env entry point);
 *   D2  hash-order hazards: iteration over unordered containers
 *       (range-for or .begin()), which visits elements in hash order
 *       and can leak host-dependent order into output or float
 *       accumulation;
 *   D3  pointer-order hazards: pointer keys in ordered containers or
 *       std::less over pointers, whose order is the allocator's;
 *   D4  mutable namespace-scope / static-local state under src/ (the
 *       src/par "jobs own their WorkerServer" contract) unless
 *       allowlisted;
 *   D5  unseeded RNG engine construction: every engine must be built
 *       from an explicit seed expression. Class members are exempt
 *       (they are seeded in constructor initializer lists, which a
 *       token-level pass cannot see) unless explicitly `{}`-inited.
 *
 * Suppressions: `// detlint: allow(D2, "why this is order-safe")` on
 * the finding's line or the line above. A suppression without a
 * non-empty justification is itself a finding (rule SUPP).
 *
 * The analysis is two-pass: pass 1 collects container aliases and the
 * declared names of (un)ordered variables across *all* files, so a
 * loop in a .cc over a member declared in its .hh still resolves;
 * pass 2 walks each file with a scope stack and emits findings.
 * Heuristics err on the side of flagging — the suppression mechanism,
 * not silence, is the escape hatch.
 */

#ifndef JORD_TOOLS_DETLINT_ANALYZER_HH
#define JORD_TOOLS_DETLINT_ANALYZER_HH

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hh"

namespace jord::detlint {

struct Finding {
    std::string rule;
    std::string file;
    unsigned line = 0;
    std::string symbol;
    std::string message;
    bool baselined = false;
};

/** Stable ordering: file, then line, then rule, then symbol. */
inline bool
findingLess(const Finding &a, const Finding &b)
{
    if (a.file != b.file)
        return a.file < b.file;
    if (a.line != b.line)
        return a.line < b.line;
    if (a.rule != b.rule)
        return a.rule < b.rule;
    return a.symbol < b.symbol;
}

/** Baseline fingerprint; line-stable within one revision. */
inline std::string
fingerprint(const Finding &f)
{
    return f.rule + "|" + f.file + "|" + std::to_string(f.line) + "|" +
           f.symbol;
}

struct RuleInfo {
    const char *id;
    const char *name;
    const char *desc;
};

inline const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> kRules = {
        {"D1", "banned-nondeterminism-source",
         "Wall clocks, process entropy, sleeps, and raw environment "
         "reads are banned: all nondeterminism must flow through "
         "seeded sim::Rng instances or the annotated sim::env entry "
         "point."},
        {"D2", "hash-order-iteration",
         "Iterating an unordered container visits elements in hash "
         "order; switch to std::map / a sorted copy, or suppress with "
         "a written order-insensitivity argument."},
        {"D3", "pointer-order-hazard",
         "Pointer keys in ordered containers (or std::less over "
         "pointers) order by allocation address, which varies run to "
         "run."},
        {"D4", "mutable-static-state",
         "Mutable namespace-scope or static-local state under src/ "
         "breaks the src/par contract that jobs own their full "
         "WorkerServer; add to the committed allowlist only with a "
         "synchronization story."},
        {"D5", "unseeded-rng",
         "RNG engines must be constructed from an explicit seed "
         "expression traceable to a parameter; default construction "
         "hides the seed."},
        {"SUPP", "malformed-suppression",
         "detlint suppressions require a known rule id and a "
         "non-empty quoted justification."},
    };
    return kRules;
}

inline bool
isKnownRule(const std::string &id)
{
    for (const RuleInfo &r : ruleCatalog())
        if (id == r.id)
            return true;
    return false;
}

/** Per-file suppression table: rule id -> suppressed lines. */
struct Suppressions {
    std::map<std::string, std::set<unsigned>> lines;

    bool
    covers(const std::string &rule, unsigned line) const
    {
        auto it = lines.find(rule);
        return it != lines.end() && it->second.count(line) != 0;
    }
};

/**
 * Parse `detlint: allow(D2, "why")` suppression comments. A comment
 * mentioning detlint without the `allow` marker is prose and ignored;
 * an `allow` with an unknown rule or a missing/empty justification
 * becomes a SUPP finding (never suppressible).
 */
inline Suppressions
parseSuppressions(const LexedFile &f, std::vector<Finding> &out)
{
    Suppressions supp;
    for (const Comment &c : f.comments) {
        std::size_t pos = c.text.find("detlint:");
        if (pos == std::string::npos)
            continue;
        auto bad = [&](const char *why) {
            out.push_back({"SUPP", f.path, c.line, "detlint",
                           std::string("malformed suppression: ") +
                               why});
        };
        std::size_t i = pos + 8;
        auto skipWs = [&] {
            while (i < c.text.size() &&
                   (c.text[i] == ' ' || c.text[i] == '\t'))
                ++i;
        };
        skipWs();
        if (c.text.compare(i, 5, "allow") != 0)
            continue; // prose mention, not a suppression attempt
        if (c.text.compare(i, 6, "allow(") != 0) {
            bad("expected `allow(D<n>, \"justification\")`");
            continue;
        }
        i += 6;
        skipWs();
        std::size_t rs = i;
        while (i < c.text.size() && isIdentChar(c.text[i]))
            ++i;
        std::string rule = c.text.substr(rs, i - rs);
        if (!isKnownRule(rule) || rule == "SUPP") {
            bad(("unknown rule '" + rule + "'").c_str());
            continue;
        }
        skipWs();
        if (i >= c.text.size() || c.text[i] != ',') {
            bad("missing justification (a suppression must say why "
                "the finding is safe)");
            continue;
        }
        ++i;
        skipWs();
        if (i >= c.text.size() || c.text[i] != '"') {
            bad("justification must be a quoted string");
            continue;
        }
        std::size_t qs = ++i;
        while (i < c.text.size() && c.text[i] != '"')
            ++i;
        if (i >= c.text.size()) {
            bad("unterminated justification string");
            continue;
        }
        std::string why = c.text.substr(qs, i - qs);
        ++i;
        skipWs();
        if (i >= c.text.size() || c.text[i] != ')') {
            bad("expected `)` after the justification");
            continue;
        }
        if (why.find_first_not_of(" \t") == std::string::npos) {
            bad("empty justification");
            continue;
        }
        // A suppression covers its own line(s) and the next line, so
        // it works both trailing and on the line above the finding.
        for (unsigned l = c.line; l <= c.line + c.extraLines + 1; ++l)
            supp.lines[rule].insert(l);
    }
    return supp;
}

class Analyzer
{
  public:
    /** Prefix limiting where D4 applies; "" means everywhere. */
    std::string d4Scope = "src/";
    /** D4 allowlist entries, `path:symbol`. */
    std::vector<std::string> allowlist;

    /** Pass 1a: collect unordered-container type aliases. */
    void
    collectAliases(const LexedFile &f)
    {
        const auto &t = f.toks;
        for (std::size_t i = 0; i + 2 < t.size(); ++i) {
            bool usingAlias = t[i].text == "using" &&
                              t[i + 1].kind == Tok::Ident &&
                              t[i + 2].text == "=";
            bool typedefDecl = t[i].text == "typedef";
            if (!usingAlias && !typedefDecl)
                continue;
            // Scan the statement; remember whether an unordered
            // container name appears in it.
            std::size_t j = i + 1;
            bool unordered = false;
            std::string lastIdent;
            while (j < t.size() && t[j].text != ";") {
                if (t[j].kind == Tok::Ident) {
                    if (isUnorderedName(t[j].text))
                        unordered = true;
                    lastIdent = t[j].text;
                }
                ++j;
            }
            if (!unordered)
                continue;
            if (usingAlias)
                unorderedTypes_.insert(t[i + 1].text);
            else if (!lastIdent.empty())
                unorderedTypes_.insert(lastIdent);
            i = j;
        }
    }

    /** Pass 1b: collect declared (un)ordered variable names. */
    void
    collectVars(const LexedFile &f)
    {
        const auto &t = f.toks;
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != Tok::Ident)
                continue;
            bool unordered = isUnorderedType(t, i);
            bool ordered = !unordered && isOrderedType(t, i);
            if (!unordered && !ordered)
                continue;
            std::size_t j = i + 1;
            if (j < t.size() && t[j].text == "<") {
                j = skipTemplateArgs(t, j);
                if (j == 0)
                    continue; // unmatched
            }
            // `std::unordered_map<..>::iterator` etc.: a nested-type
            // use, not a declaration.
            if (j < t.size() && t[j].text == "::")
                continue;
            while (j < t.size() &&
                   (t[j].text == "const" || t[j].text == "&" ||
                    t[j].text == "*"))
                ++j;
            if (j >= t.size() || t[j].kind != Tok::Ident)
                continue;
            const std::string &name = t[j].text;
            std::size_t k = j + 1;
            if (k >= t.size())
                continue;
            const std::string &after = t[k].text;
            if (after == "[")
                continue; // array of containers: iterating it is fine
            if (after == "(") {
                if (unordered)
                    unorderedFuncs_.insert(name);
                continue;
            }
            if (after == ";" || after == "=" || after == "{" ||
                after == "," || after == ")") {
                if (unordered) {
                    unorderedVars_[f.path].insert(name);
                    unorderedGlobal_.insert(name);
                } else {
                    orderedVars_[f.path].insert(name);
                }
            }
        }
    }

    /** Pass 2: emit findings for one file. */
    void
    analyze(const LexedFile &f, std::vector<Finding> &out) const
    {
        std::vector<Finding> raw;
        Suppressions supp = parseSuppressions(f, raw);
        analyzeTokens(f, raw);
        for (Finding &fd : raw) {
            if (fd.rule != "SUPP" && supp.covers(fd.rule, fd.line))
                continue;
            if (fd.rule == "D4" && allowlisted(fd))
                continue;
            out.push_back(std::move(fd));
        }
    }

  private:
    std::set<std::string> unorderedTypes_ = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    std::map<std::string, std::set<std::string>> unorderedVars_;
    std::map<std::string, std::set<std::string>> orderedVars_;
    std::set<std::string> unorderedGlobal_;
    std::set<std::string> unorderedFuncs_;

    static bool
    isUnorderedName(const std::string &s)
    {
        return s == "unordered_map" || s == "unordered_set" ||
               s == "unordered_multimap" || s == "unordered_multiset";
    }

    static bool
    stdQualified(const std::vector<Token> &t, std::size_t i)
    {
        return i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std";
    }

    bool
    isUnorderedType(const std::vector<Token> &t, std::size_t i) const
    {
        if (isUnorderedName(t[i].text))
            return stdQualified(t, i);
        // Alias names resolve without qualification.
        return !isUnorderedName(t[i].text) &&
               unorderedTypes_.count(t[i].text) != 0;
    }

    static bool
    isOrderedType(const std::vector<Token> &t, std::size_t i)
    {
        const std::string &s = t[i].text;
        bool container = s == "map" || s == "set" || s == "multimap" ||
                         s == "multiset" || s == "vector" ||
                         s == "deque" || s == "list" || s == "array" ||
                         s == "string";
        return container && stdQualified(t, i);
    }

    /** Skip `<...>`; returns index past the closing `>`, 0 if open. */
    static std::size_t
    skipTemplateArgs(const std::vector<Token> &t, std::size_t open)
    {
        int depth = 0;
        for (std::size_t j = open; j < t.size(); ++j) {
            if (t[j].text == "<")
                ++depth;
            else if (t[j].text == ">" && --depth == 0)
                return j + 1;
            else if (t[j].text == ";")
                return 0; // statement ended: not a template after all
        }
        return 0;
    }

    bool
    allowlisted(const Finding &fd) const
    {
        for (const std::string &entry : allowlist) {
            std::size_t colon = entry.rfind(':');
            if (colon == std::string::npos)
                continue;
            std::string path = entry.substr(0, colon);
            std::string symbol = entry.substr(colon + 1);
            if (symbol != fd.symbol)
                continue;
            if (fd.file == path)
                return true;
            if (fd.file.size() > path.size() &&
                fd.file.compare(fd.file.size() - path.size(),
                                path.size(), path) == 0 &&
                fd.file[fd.file.size() - path.size() - 1] == '/')
                return true;
        }
        return false;
    }

    bool
    d4Applies(const std::string &path) const
    {
        if (d4Scope.empty())
            return true;
        if (path.compare(0, d4Scope.size(), d4Scope) == 0)
            return true;
        return path.find("/" + d4Scope) != std::string::npos;
    }

    // --- pass-2 walk ------------------------------------------------

    enum class Scope { Namespace, Class, Enum, Function, Block };

    void
    analyzeTokens(const LexedFile &f, std::vector<Finding> &out) const
    {
        const auto &t = f.toks;
        std::vector<Scope> scopes{Scope::Namespace};
        std::vector<const Token *> stmt;
        int parens = 0;

        auto scope = [&] { return scopes.back(); };

        for (std::size_t i = 0; i < t.size(); ++i) {
            const Token &tok = t[i];

            checkD1(f, t, i, out);
            checkD2Loop(f, t, i, out);
            checkD2Begin(f, t, i, out);
            checkD3(f, t, i, out);
            checkD5(f, t, i, scope(), out);

            if (tok.text == "(") {
                ++parens;
            } else if (tok.text == ")") {
                parens = parens > 0 ? parens - 1 : 0;
            } else if (tok.text == "{" && parens == 0) {
                if (braceIsInitializer(stmt)) {
                    // `Foo f = {..};` / `static Foo f{..};`: consume
                    // the initializer whole so the declaration still
                    // analyzes as one statement at the `;`.
                    i = skipBalancedBraces(t, i);
                    continue;
                }
                scopes.push_back(classifyBrace(stmt, scope()));
                stmt.clear();
                continue;
            } else if (tok.text == "}" && parens == 0) {
                if (scopes.size() > 1)
                    scopes.pop_back();
                stmt.clear();
                continue;
            } else if (tok.text == ";" && parens == 0) {
                checkD4(f, stmt, scope(), out);
                stmt.clear();
                continue;
            }
            if (stmt.size() < 512)
                stmt.push_back(&tok);
        }
    }

    /**
     * A `{` that begins an initializer rather than a scope: directly
     * after `=`, or after a declarator name with no control keyword
     * or parameter list in sight (`std::vector<int> v{1, 2};`).
     */
    static bool
    braceIsInitializer(const std::vector<const Token *> &stmt)
    {
        if (stmt.empty())
            return false;
        if (stmt.back()->text == "=")
            return true;
        if (stmt.back()->kind != Tok::Ident || stmt.size() < 2)
            return false;
        static const char *kScopeWords[] = {
            "(",      "do",    "else",      "try",    "if",
            "for",    "while", "switch",    "catch",  "namespace",
            "class",  "struct", "union",    "enum",   "extern",
            "template", "operator"};
        for (const Token *tok : stmt)
            for (const char *kw : kScopeWords)
                if (tok->text == kw)
                    return false;
        return true;
    }

    static std::size_t
    skipBalancedBraces(const std::vector<Token> &t, std::size_t open)
    {
        int depth = 0;
        for (std::size_t j = open; j < t.size(); ++j) {
            if (t[j].text == "{")
                ++depth;
            else if (t[j].text == "}" && --depth == 0)
                return j;
        }
        return t.size() - 1;
    }

    static Scope
    classifyBrace(const std::vector<const Token *> &stmt, Scope current)
    {
        auto has = [&](const char *kw) {
            return std::any_of(stmt.begin(), stmt.end(),
                               [&](const Token *tok) {
                                   return tok->text == kw;
                               });
        };
        if (has("namespace") || has("extern"))
            return Scope::Namespace;
        if (has("enum"))
            return Scope::Enum;
        if (has("class") || has("struct") || has("union"))
            return Scope::Class;
        if (current == Scope::Function || current == Scope::Block)
            return Scope::Block;
        if (has("("))
            return Scope::Function;
        return Scope::Block;
    }

    // --- D1: banned nondeterminism sources --------------------------

    void
    checkD1(const LexedFile &f, const std::vector<Token> &t,
            std::size_t i, std::vector<Finding> &out) const
    {
        if (t[i].kind != Tok::Ident)
            return;
        const std::string &s = t[i].text;
        auto prevText = [&]() -> const std::string & {
            static const std::string empty;
            return i > 0 ? t[i - 1].text : empty;
        };
        auto flag = [&](const std::string &what) {
            out.push_back(
                {"D1", f.path, t[i].line, s,
                 "banned nondeterminism source: " + what});
        };

        // Banned wherever they appear, member access included.
        static const std::set<std::string> kAlways = {
            "random_device",          "system_clock",
            "steady_clock",           "high_resolution_clock",
            "sleep_for",              "sleep_until",
            "gettimeofday",           "clock_gettime",
            "timespec_get"};
        if (kAlways.count(s) != 0) {
            flag("'" + s +
                 "' (host time/entropy must not reach the simulator; "
                 "use seeded sim::Rng / simulated ticks)");
            return;
        }

        // Banned as free-function calls. Skip member calls (x.time())
        // and calls qualified into a non-std namespace.
        static const std::set<std::string> kCalls = {
            "rand",    "srand",   "random",  "drand48", "lrand48",
            "srand48", "time",    "clock",   "usleep",  "nanosleep",
            "sleep"};
        bool called = i + 1 < t.size() && t[i + 1].text == "(";
        const std::string &prev = prevText();
        bool member = prev == "." || prev == "->";
        bool foreignNs = prev == "::" && i >= 2 &&
                         t[i - 2].kind == Tok::Ident &&
                         t[i - 2].text != "std";
        if (s == "getenv") {
            if (!member)
                flag("raw 'getenv' (route environment reads through "
                     "the annotated sim::env entry point)");
            return;
        }
        if (kCalls.count(s) != 0 && called && !member && !foreignNs)
            flag("call to '" + s + "'");
    }

    // --- D2: hash-order iteration -----------------------------------

    bool
    nameIsUnordered(const std::string &file,
                    const std::string &name) const
    {
        auto here = unorderedVars_.find(file);
        if (here != unorderedVars_.end() &&
            here->second.count(name) != 0)
            return true;
        auto ordered = orderedVars_.find(file);
        if (ordered != orderedVars_.end() &&
            ordered->second.count(name) != 0)
            return false; // a local ordered decl wins over collisions
        return unorderedGlobal_.count(name) != 0;
    }

    void
    checkD2Loop(const LexedFile &f, const std::vector<Token> &t,
                std::size_t i, std::vector<Finding> &out) const
    {
        if (t[i].text != "for" || i + 1 >= t.size() ||
            t[i + 1].text != "(")
            return;
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (t[j].text == "(") {
                ++depth;
            } else if (t[j].text == ")") {
                if (--depth == 0) {
                    close = j;
                    break;
                }
            } else if (t[j].text == ":" && depth == 1 && colon == 0) {
                colon = j;
            }
        }
        if (close == 0 || colon == 0)
            return; // classic for or unterminated
        auto flag = [&](const std::string &name) {
            out.push_back(
                {"D2", f.path, t[i].line, name,
                 "range-for over unordered container '" + name +
                     "' iterates in hash order; use std::map, a "
                     "sorted copy, or suppress with an "
                     "order-insensitivity argument"});
        };
        // Inline-constructed or explicitly-typed unordered range.
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (t[j].kind == Tok::Ident &&
                unorderedTypes_.count(t[j].text) != 0) {
                flag(t[j].text);
                return;
            }
        }
        // Terminal symbol of the range expression.
        const Token &last = t[close - 1];
        if (last.kind == Tok::Ident) {
            if (nameIsUnordered(f.path, last.text))
                flag(last.text);
            return;
        }
        if (last.text == ")") {
            int d = 0;
            for (std::size_t j = close - 1; j > colon; --j) {
                if (t[j].text == ")")
                    ++d;
                else if (t[j].text == "(" && --d == 0) {
                    if (j > colon + 1 &&
                        t[j - 1].kind == Tok::Ident &&
                        unorderedFuncs_.count(t[j - 1].text) != 0)
                        flag(t[j - 1].text + "()");
                    return;
                }
            }
        }
    }

    void
    checkD2Begin(const LexedFile &f, const std::vector<Token> &t,
                 std::size_t i, std::vector<Finding> &out) const
    {
        if (t[i].kind != Tok::Ident || i + 2 >= t.size() ||
            t[i + 1].text != "." ||
            (t[i + 2].text != "begin" && t[i + 2].text != "cbegin"))
            return;
        if (!nameIsUnordered(f.path, t[i].text))
            return;
        out.push_back(
            {"D2", f.path, t[i].line, t[i].text,
             "iterator traversal of unordered container '" + t[i].text +
                 "' walks in hash order"});
    }

    // --- D3: pointer-order hazards ----------------------------------

    void
    checkD3(const LexedFile &f, const std::vector<Token> &t,
            std::size_t i, std::vector<Finding> &out) const
    {
        if (t[i].kind != Tok::Ident || !stdQualified(t, i))
            return;
        const std::string &s = t[i].text;
        bool orderedContainer = s == "map" || s == "set" ||
                                s == "multimap" || s == "multiset";
        bool comparator = s == "less" || s == "greater";
        if ((!orderedContainer && !comparator) || i + 1 >= t.size() ||
            t[i + 1].text != "<")
            return;
        // Examine the first template argument (the key / compared
        // type): a trailing `*` means ordering by allocation address.
        int depth = 0;
        std::size_t lastReal = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            const std::string &x = t[j].text;
            if (x == "<") {
                ++depth;
            } else if (x == ">") {
                if (--depth == 0)
                    break;
            } else if (x == "," && depth == 1) {
                break;
            } else if (x == ";") {
                return;
            } else if (x != "const") {
                lastReal = j;
            }
        }
        if (lastReal != 0 && t[lastReal].text == "*") {
            out.push_back(
                {"D3", f.path, t[i].line, "std::" + s,
                 (orderedContainer
                      ? "pointer key in ordered container 'std::" + s +
                            "' orders by allocation address"
                      : "'std::" + s +
                            "' over pointers compares allocation "
                            "addresses") +
                     ", which varies across runs"});
        }
    }

    // --- D4: mutable static state -----------------------------------

    void
    checkD4(const LexedFile &f,
            const std::vector<const Token *> &stmt, Scope scope,
            std::vector<Finding> &out) const
    {
        if (stmt.empty() || !d4Applies(f.path))
            return;
        auto has = [&](const char *kw) {
            return std::any_of(stmt.begin(), stmt.end(),
                               [&](const Token *tok) {
                                   return tok->text == kw;
                               });
        };
        if (has("const") || has("constexpr") || has("constinit") ||
            has("consteval"))
            return;
        auto symbolOf = [&]() -> const Token * {
            const Token *last = nullptr;
            for (const Token *tok : stmt) {
                if (tok->text == "=")
                    break;
                if (tok->kind == Tok::Ident)
                    last = tok;
            }
            return last;
        };
        if (scope == Scope::Namespace) {
            static const char *kSkip[] = {
                "using",  "typedef",   "extern",        "friend",
                "template", "static_assert", "struct", "class",
                "enum",   "union",     "namespace",     "operator",
                "concept", "requires", "("};
            for (const char *kw : kSkip)
                if (has(kw))
                    return;
            const Token *sym = symbolOf();
            if (sym == nullptr)
                return;
            out.push_back(
                {"D4", f.path, sym->line, sym->text,
                 "mutable namespace-scope state '" + sym->text +
                     "' (jobs must own their state; allowlist only "
                     "with a synchronization story)"});
            return;
        }
        if (!has("static"))
            return;
        if (scope == Scope::Class) {
            if (has("(") || has("using") || has("typedef"))
                return; // static member function / alias
            const Token *sym = symbolOf();
            if (sym == nullptr)
                return;
            out.push_back({"D4", f.path, sym->line, sym->text,
                           "mutable static class member '" +
                               sym->text + "'"});
            return;
        }
        if (scope == Scope::Function || scope == Scope::Block) {
            const Token *sym = symbolOf();
            if (sym == nullptr)
                return;
            out.push_back({"D4", f.path, sym->line, sym->text,
                           "mutable function-local static '" +
                               sym->text + "'"});
        }
    }

    // --- D5: unseeded RNG construction ------------------------------

    void
    checkD5(const LexedFile &f, const std::vector<Token> &t,
            std::size_t i, Scope scope,
            std::vector<Finding> &out) const
    {
        if (t[i].kind != Tok::Ident)
            return;
        static const std::set<std::string> kEngines = {
            "mt19937",        "mt19937_64",
            "minstd_rand",    "minstd_rand0",
            "default_random_engine", "knuth_b",
            "ranlux24",       "ranlux24_base",
            "ranlux48",       "ranlux48_base",
            "Rng"};
        if (kEngines.count(t[i].text) == 0)
            return;
        if (i > 0 &&
            (t[i - 1].text == "class" || t[i - 1].text == "struct" ||
             t[i - 1].text == "." || t[i - 1].text == "->"))
            return;
        if (i + 1 >= t.size())
            return;
        auto flag = [&](unsigned line, const std::string &sym) {
            out.push_back(
                {"D5", f.path, line, sym,
                 "RNG engine '" + t[i].text +
                     "' constructed without an explicit seed "
                     "expression; every engine must be seeded from a "
                     "parameter"});
        };
        const std::string &n1 = t[i + 1].text;
        if (n1 == "::" || n1 == "&" || n1 == "*" || n1 == "<")
            return; // qualified use, reference/pointer, template
        // Temporary: `Rng()` / `Rng{}`.
        if ((n1 == "(" || n1 == "{") && i + 2 < t.size() &&
            t[i + 2].text == (n1 == "(" ? ")" : "}")) {
            flag(t[i].line, t[i].text);
            return;
        }
        if (t[i + 1].kind != Tok::Ident)
            return;
        if (i + 2 >= t.size())
            return;
        const std::string &n2 = t[i + 2].text;
        if (n2 == ";") {
            // Members are seeded in constructor initializer lists,
            // which this pass cannot see; locals and globals have no
            // such excuse.
            if (scope != Scope::Class)
                flag(t[i + 1].line, t[i + 1].text);
            return;
        }
        if (n2 == "{" && i + 3 < t.size() && t[i + 3].text == "}") {
            flag(t[i + 1].line, t[i + 1].text);
            return;
        }
        // `Rng r(seed)` / `Rng r{seed}` / params / references: fine.
    }
};

} // namespace jord::detlint

#endif // JORD_TOOLS_DETLINT_ANALYZER_HH
