/**
 * @file
 * detlint: static determinism & contract analyzer for the simulator.
 *
 * Scans C++ sources (no compiler, no libclang: a tokenizer plus a
 * lightweight scope/type layer — see analyzer.hh) and enforces the
 * repo's determinism contracts as named rules D1-D5. Output is
 * deterministic: files are scanned in sorted order and findings are
 * sorted, so two runs over the same tree are byte-identical.
 *
 * Usage:
 *     detlint [FLAGS] PATH...         # files or directories
 *
 * Flags:
 *   --json                 machine-readable findings on stdout
 *   --sarif FILE           also write SARIF 2.1.0 (new findings)
 *   --baseline FILE        adopt legacy findings; exit non-zero only
 *                          on findings not in FILE
 *   --write-baseline FILE  write current findings as a baseline
 *   --allowlist FILE       D4 allowlist (`path:symbol` per line)
 *   --d4-scope PREFIX      restrict D4 to paths under PREFIX
 *                          (default `src/`; empty = everywhere)
 *   --list-rules           print the rule catalog and exit
 *
 * Directories are walked recursively for .cc/.hh (+ .cpp/.hpp/.h/.cxx)
 * sources; `build*`, hidden, and `lint_corpus` directories are skipped
 * (the corpus is deliberately full of positives — pass a corpus file
 * explicitly to lint it).
 *
 * Exit codes: 0 clean, 1 new findings, 2 usage/configuration error.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hh"
#include "lexer.hh"

namespace fs = std::filesystem;
using jord::detlint::Analyzer;
using jord::detlint::Finding;
using jord::detlint::LexedFile;
using jord::detlint::RuleInfo;

namespace {

[[noreturn]] void
usageError(const char *fmt, const std::string &arg = "")
{
    std::fprintf(stderr, "detlint: ");
    std::fprintf(stderr, fmt, arg.c_str());
    std::fprintf(stderr, " (--help for usage)\n");
    std::exit(2);
}

void
printHelp()
{
    std::printf(
        "usage: detlint [FLAGS] PATH...\n"
        "\n"
        "Static determinism & contract analyzer (rules D1-D5).\n"
        "\n"
        "  --json                 JSON findings on stdout\n"
        "  --sarif FILE           write SARIF 2.1.0 for new findings\n"
        "  --baseline FILE        adopt legacy findings from FILE\n"
        "  --write-baseline FILE  write current findings as baseline\n"
        "  --allowlist FILE       D4 allowlist (path:symbol lines)\n"
        "  --d4-scope PREFIX      restrict D4 to PREFIX (default "
        "src/)\n"
        "  --list-rules           print the rule catalog\n"
        "\n"
        "Suppress a finding with a justified annotation on or above "
        "the line:\n"
        "    // detlint: allow(D2, \"aggregation is commutative over "
        "ints\")\n");
}

bool
hasSourceExtension(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h" || ext == ".cxx";
}

bool
skippedDir(const std::string &name)
{
    return name == "lint_corpus" || name.rfind("build", 0) == 0 ||
           (!name.empty() && name[0] == '.');
}

std::string
normalized(const fs::path &p)
{
    std::string s = p.lexically_normal().generic_string();
    if (s.rfind("./", 0) == 0)
        s = s.substr(2);
    return s;
}

std::vector<std::string>
collectFiles(const std::vector<std::string> &paths)
{
    std::set<std::string> files;
    for (const std::string &arg : paths) {
        fs::path p(arg);
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            fs::recursive_directory_iterator it(p, ec), end;
            if (ec)
                usageError("cannot walk directory '%s'", arg);
            for (; it != end; ++it) {
                if (it->is_directory() &&
                    skippedDir(it->path().filename().string())) {
                    it.disable_recursion_pending();
                    continue;
                }
                if (it->is_regular_file() &&
                    hasSourceExtension(it->path()))
                    files.insert(normalized(it->path()));
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.insert(normalized(p));
        } else {
            usageError("no such file or directory: '%s'", arg);
        }
    }
    return {files.begin(), files.end()};
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        usageError("cannot read '%s'", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<std::string>
readListFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        usageError("cannot read '%s'", path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        std::size_t end = line.find_last_not_of(" \t\r");
        lines.push_back(line.substr(start, end - start + 1));
    }
    return lines;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

void
writeSarif(const std::string &path, const std::vector<Finding> &fresh)
{
    std::ofstream out(path);
    if (!out)
        usageError("cannot write '%s'", path);
    out << "{\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"runs\": [\n    {\n      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"detlint\",\n"
        << "          \"rules\": [\n";
    const auto &rules = jord::detlint::ruleCatalog();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out << "            {\"id\": \"" << rules[i].id
            << "\", \"name\": \"" << rules[i].name
            << "\", \"shortDescription\": {\"text\": \""
            << jsonEscape(rules[i].desc) << "\"}}"
            << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    out << "          ]\n        }\n      },\n"
        << "      \"results\": [\n";
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        const Finding &f = fresh[i];
        out << "        {\"ruleId\": \"" << f.rule
            << "\", \"level\": \"error\", \"message\": {\"text\": \""
            << jsonEscape(f.message)
            << "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << jsonEscape(f.file)
            << "\"}, \"region\": {\"startLine\": " << f.line
            << "}}}]}" << (i + 1 < fresh.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }\n  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    std::string sarifPath, baselinePath, writeBaselinePath;
    std::string allowlistPath;
    std::string d4Scope = "src/";
    bool json = false;

    auto nextArg = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError("%s requires an argument", flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json") {
            json = true;
        } else if (a == "--sarif") {
            sarifPath = nextArg(i, "--sarif");
        } else if (a == "--baseline") {
            baselinePath = nextArg(i, "--baseline");
        } else if (a == "--write-baseline") {
            writeBaselinePath = nextArg(i, "--write-baseline");
        } else if (a == "--allowlist") {
            allowlistPath = nextArg(i, "--allowlist");
        } else if (a == "--d4-scope") {
            d4Scope = nextArg(i, "--d4-scope");
        } else if (a == "--list-rules") {
            for (const RuleInfo &r : jord::detlint::ruleCatalog())
                std::printf("%-5s %-28s %s\n", r.id, r.name, r.desc);
            return 0;
        } else if (a == "--help" || a == "-h") {
            printHelp();
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            usageError("unknown flag '%s'", a);
        } else {
            paths.push_back(a);
        }
    }
    if (paths.empty())
        usageError("no input paths given");

    std::vector<std::string> files = collectFiles(paths);
    std::vector<LexedFile> lexed;
    lexed.reserve(files.size());
    for (const std::string &f : files)
        lexed.push_back(jord::detlint::lex(f, slurp(f)));

    Analyzer analyzer;
    analyzer.d4Scope = d4Scope;
    if (!allowlistPath.empty())
        analyzer.allowlist = readListFile(allowlistPath);
    for (const LexedFile &f : lexed)
        analyzer.collectAliases(f);
    for (const LexedFile &f : lexed)
        analyzer.collectVars(f);

    std::vector<Finding> findings;
    for (const LexedFile &f : lexed)
        analyzer.analyze(f, findings);
    std::sort(findings.begin(), findings.end(),
              jord::detlint::findingLess);

    if (!writeBaselinePath.empty()) {
        std::ofstream out(writeBaselinePath);
        if (!out)
            usageError("cannot write '%s'", writeBaselinePath);
        out << "# detlint baseline: adopted legacy findings, one "
               "fingerprint per line.\n"
            << "# Regenerate with `detlint --write-baseline FILE "
               "PATH...`.\n";
        for (const Finding &f : findings)
            out << jord::detlint::fingerprint(f) << "\n";
        std::fprintf(stderr, "detlint: wrote %zu fingerprint(s) to %s\n",
                     findings.size(), writeBaselinePath.c_str());
        return 0;
    }

    std::set<std::string> baseline;
    if (!baselinePath.empty())
        for (const std::string &line : readListFile(baselinePath))
            baseline.insert(line);

    std::vector<Finding> fresh;
    std::size_t baselined = 0;
    for (Finding &f : findings) {
        if (baseline.count(jord::detlint::fingerprint(f)) != 0) {
            f.baselined = true;
            ++baselined;
        } else {
            fresh.push_back(f);
        }
    }

    if (json) {
        std::printf("{\n  \"findings\": [\n");
        for (std::size_t i = 0; i < findings.size(); ++i) {
            const Finding &f = findings[i];
            std::printf("    {\"rule\": \"%s\", \"file\": \"%s\", "
                        "\"line\": %u, \"symbol\": \"%s\", "
                        "\"baselined\": %s, \"message\": \"%s\"}%s\n",
                        f.rule.c_str(), jsonEscape(f.file).c_str(),
                        f.line, jsonEscape(f.symbol).c_str(),
                        f.baselined ? "true" : "false",
                        jsonEscape(f.message).c_str(),
                        i + 1 < findings.size() ? "," : "");
        }
        std::printf("  ],\n  \"files\": %zu,\n  \"new\": %zu,\n"
                    "  \"baselined\": %zu\n}\n",
                    files.size(), fresh.size(), baselined);
    } else {
        for (const Finding &f : fresh)
            std::printf("%s:%u: %s [%s]: %s\n", f.file.c_str(),
                        f.line, f.rule.c_str(), f.symbol.c_str(),
                        f.message.c_str());
        std::printf("detlint: %zu file(s), %zu new finding(s), "
                    "%zu baselined\n",
                    files.size(), fresh.size(), baselined);
    }
    if (!sarifPath.empty())
        writeSarif(sarifPath, fresh);

    return fresh.empty() ? 0 : 1;
}
